//! Core- and forest-match enumeration (§4.2.2 Algorithm 5, §4.3).
//!
//! Walks the matching order depth-first. Candidates for the root come from
//! its CPI candidate set; candidates for every other vertex come from the
//! CPI adjacency row of its already-mapped BFS parent (so the data graph is
//! never scanned for tree edges). Non-tree edges — present only among core
//! vertices — are validated by probing `G` (`ValidateNT`), exactly as
//! Theorem 4.1 prescribes. Once all core and forest vertices are mapped the
//! leaf phase (§4.4) completes the embedding.
//!
//! The enumerator is generic over the two strategy traits of
//! [`super::strategy`]: which vertex to extend at each depth
//! ([`OrderingStrategy`]) and which sibling candidates to skip when a
//! subtree fails ([`PruningStrategy`]). The default combination
//! ([`StaticOrder`](super::strategy::StaticOrder),
//! [`PlainBacktrack`](super::strategy::PlainBacktrack)) monomorphizes every
//! hook to an inlined no-op, so it compiles to the paper's Algorithm 5
//! exactly; every combination enumerates the identical embedding set.
//!
//! The set primitives here are shared with CPI construction via
//! [`cfl_graph::intersect`]: `ValidateNT` probes maintained neighborhood
//! bitsets (the same bitset-membership strategy `build_rows` uses), and the
//! leaf phase computes `N_u^{u.p}(v) ∖ visited` with the kernel's
//! set-difference form.

use std::ops::ControlFlow;
use std::time::Instant;

use cfl_graph::{FixedBitSet, Graph, VertexId};

use super::leaf::LeafPhase;
use super::strategy::{OrderingStrategy, PruningStrategy};
use crate::config::{Budget, CancelToken};
use crate::cpi::Cpi;
use crate::order::OrderPlan;
use crate::result::MatchOutcome;

/// Sentinel for unmapped query vertices.
pub(crate) const UNMAPPED: VertexId = VertexId::MAX;

/// The backtrack quantum: how many search nodes may pass between
/// deadline/cancellation checks. A cancelled or expired search stops within
/// this many additional node expansions (the serving layer's cancellation
/// latency bound; `serve` tests pin it).
pub const CANCEL_QUANTUM: u64 = 4096;

pub(crate) struct Enumerator<'a, 's, O: OrderingStrategy, P: PruningStrategy> {
    q: &'a Graph,
    g: &'a Graph,
    cpi: &'a Cpi,
    plan: &'a OrderPlan,
    sink: super::SinkRef<'s>,
    leaf: LeafPhase,
    ordering: O,
    pruning: P,

    /// mapping[u] = data vertex for query vertex u, or UNMAPPED.
    pub mapping: Vec<VertexId>,
    /// pos[u] = position of mapping[u] within `cpi.candidates(u)`.
    pub pos: Vec<u32>,
    /// Data vertices already used by the partial embedding. Word-packed so
    /// the per-candidate membership test is one load + mask instead of a
    /// byte access over a `|V(G)|`-sized `Vec<bool>`.
    pub visited: FixedBitSet,
    /// Whether query vertex `u` is the source of some `ValidateNT` check
    /// (decided by the ordering strategy: with the static plan, whether
    /// `u` appears in a later step's `checks` list).
    is_check_source: Vec<bool>,
    /// For each check source `u`: the data-graph neighborhood of `mapping[u]`
    /// as a bitset, maintained while `u` is mapped. Turns every non-tree
    /// edge probe from an `O(log d)` adjacency binary search into an O(1)
    /// bit test. Non-sources carry zero-capacity (unallocated) sets.
    nt_mask: Vec<FixedBitSet>,

    pub emitted: u64,
    pub nodes: u64,
    pub nt_checks: u64,
    /// Hot-path trace counters (backtracks, steals, depth histogram,
    /// core/forest split, leaf time). Only present — and only bumped —
    /// under the `trace` feature, so default builds keep the enumerator's
    /// exact memory layout and instruction stream.
    #[cfg(feature = "trace")]
    tr: cfl_trace::EnumCounters,

    max_embeddings: u64,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    timed_out: bool,
    cancelled: bool,
}

/// Inner control signal: stop the whole search.
pub(crate) struct Stop;

impl<'a, 's, O: OrderingStrategy, P: PruningStrategy> Enumerator<'a, 's, O, P> {
    pub(crate) fn new(
        q: &'a Graph,
        g: &'a Graph,
        cpi: &'a Cpi,
        plan: &'a OrderPlan,
        budget: Budget,
        sink: super::SinkRef<'s>,
    ) -> Self {
        let deadline = budget.time_limit.map(|d| Instant::now() + d);
        let ordering = O::new(q, cpi, plan);
        let pruning = P::new(q, g, plan);
        let is_check_source = ordering.check_sources(q, plan);
        let nt_mask = is_check_source
            .iter()
            .map(|&src| FixedBitSet::new(if src { g.num_vertices() } else { 0 }))
            .collect();
        // Discard kernel-tally residue left on this (possibly reused pool)
        // thread by earlier untraced work, so `take_trace` attributes
        // dispatch counts to this enumeration only.
        #[cfg(feature = "trace")]
        {
            let _ = cfl_graph::intersect::tally::take();
        }
        Enumerator {
            q,
            g,
            cpi,
            plan,
            sink,
            leaf: LeafPhase::new(q.num_vertices()),
            ordering,
            pruning,
            mapping: vec![UNMAPPED; q.num_vertices()],
            pos: vec![0; q.num_vertices()],
            visited: FixedBitSet::new(g.num_vertices()),
            is_check_source,
            nt_mask,
            emitted: 0,
            nodes: 0,
            nt_checks: 0,
            #[cfg(feature = "trace")]
            tr: cfl_trace::EnumCounters::default(),
            max_embeddings: budget.max_embeddings.unwrap_or(u64::MAX),
            deadline,
            cancel: budget.cancel,
            timed_out: false,
            cancelled: false,
        }
    }

    /// Why a `Stop` break happened, in precedence order: an explicit
    /// cancellation wins over a deadline expiry, which wins over the
    /// embedding cap / sink stop.
    fn stop_outcome(&self) -> MatchOutcome {
        if self.cancelled {
            MatchOutcome::Cancelled
        } else if self.timed_out {
            MatchOutcome::TimedOut
        } else {
            MatchOutcome::LimitReached
        }
    }

    /// Runs the search to completion (or budget exhaustion).
    pub(crate) fn run(&mut self) -> MatchOutcome {
        if self.max_embeddings == 0 {
            return MatchOutcome::LimitReached;
        }
        match self.extend(0) {
            ControlFlow::Continue(()) => MatchOutcome::Complete,
            ControlFlow::Break(Stop) => self.stop_outcome(),
        }
    }

    /// Like [`run`](Self::run), but pulling root-candidate positions from a
    /// shared atomic cursor — the work-stealing hook for parallel
    /// enumeration. Each `fetch_add` claims the next unexplored root
    /// candidate, so workers that finish cheap subtrees immediately steal
    /// the next one instead of idling behind a static partition; the search
    /// subtrees rooted at distinct root candidates are disjoint, so no
    /// other coordination is needed. (Failing sets never span roots either:
    /// the root is in every deeper failing set, so a backjump cannot cross
    /// depth 0 — all pruning state stays worker-private.)
    ///
    /// `Relaxed` suffices for the claim `fetch_add`: an atomic
    /// read-modify-write yields each participant a distinct value of the
    /// cursor's modification order at *any* ordering, so no root candidate
    /// is ever claimed twice or skipped, and the claimed position only
    /// indexes immutable shared state (the CPI root row). Results flow
    /// back through channel/join synchronization, not through the cursor.
    /// The `cursor_claims_exactly_once` and `cursor_overshoot_is_bounded`
    /// models in `crate::models` check both properties (claim uniqueness,
    /// and ≤ 1 over-the-end claim per worker) under every schedule.
    pub(crate) fn run_stealing(
        &mut self,
        cursor: &crate::sync::atomic::AtomicU64,
        num_roots: usize,
    ) -> MatchOutcome {
        if self.max_embeddings == 0 {
            return MatchOutcome::LimitReached;
        }
        debug_assert!(self
            .plan
            .vertices
            .first()
            .is_none_or(|ov| ov.parent.is_none()));
        loop {
            let pos = cursor.fetch_add(1, crate::sync::atomic::Ordering::Relaxed);
            if pos >= num_roots as u64 {
                return MatchOutcome::Complete;
            }
            #[cfg(feature = "trace")]
            {
                self.tr.steals += 1;
            }
            // Slot 0 is always the root; a sibling-skip signal at depth 0
            // is ignored — root subtrees are partitioned by the cursor,
            // and root-level skips never fire (the root is in every
            // failing set below it).
            match self.try_candidate(0, 0, pos as u32) {
                ControlFlow::Continue(_) => {}
                ControlFlow::Break(Stop) => return self.stop_outcome(),
            }
        }
    }

    /// Polls the cooperative stop signals (cancellation token, wall-clock
    /// deadline) once per [`CANCEL_QUANTUM`] search nodes. Both are
    /// monotonic latches, so observing them a quantum late only delays the
    /// stop — it never changes results that were already emitted.
    fn out_of_time(&mut self) -> bool {
        if self.nodes.is_multiple_of(CANCEL_QUANTUM) {
            if let Some(token) = &self.cancel {
                if token.is_cancelled() {
                    self.cancelled = true;
                    return true;
                }
            }
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    self.timed_out = true;
                    return true;
                }
            }
        }
        false
    }

    fn extend(&mut self, depth: usize) -> ControlFlow<Stop> {
        if depth == self.plan.vertices.len() {
            self.pruning.on_complete(depth);
            return self.complete();
        }
        let cpi = self.cpi;
        let plan = self.plan;
        let slot = self
            .ordering
            .select(depth, cpi, plan, &self.mapping, &self.pos);
        let ov = &plan.vertices[slot];
        let u = ov.vertex;
        {
            let constraints = self.ordering.constraints(ov);
            self.pruning
                .enter(depth, u, ov.parent, constraints, &self.mapping);
        }
        match ov.parent {
            None => {
                // The root: iterate its full candidate set.
                for i in 0..cpi.candidates(u).len() {
                    if self.try_candidate(depth, slot, i as u32)? {
                        break;
                    }
                }
            }
            Some(p) => {
                let row = cpi.row(u, self.pos[p as usize] as usize);
                for &cand_pos in row {
                    if self.try_candidate(depth, slot, cand_pos)? {
                        break;
                    }
                }
            }
        }
        self.pruning.exit(depth, u);
        ControlFlow::Continue(())
    }

    /// Tries one candidate of the vertex at `slot` (chosen for `depth`).
    /// `Continue(true)` tells the caller's loop to skip the remaining
    /// sibling candidates (a pruning backjump).
    #[inline]
    fn try_candidate(
        &mut self,
        depth: usize,
        slot: usize,
        cand_pos: u32,
    ) -> ControlFlow<Stop, bool> {
        self.nodes += 1;
        #[cfg(feature = "trace")]
        self.tr.bump_node(depth, self.plan.core_len);
        if self.out_of_time() {
            return ControlFlow::Break(Stop);
        }
        let ov = &self.plan.vertices[slot];
        let u = ov.vertex;
        let v = self.cpi.candidates(u)[cand_pos as usize];
        // Cheap invariant probes (§4.1): every CPI candidate carries the
        // query vertex's label, and every adjacency-row entry is a real
        // data edge to the mapped parent.
        debug_assert_eq!(self.g.label(v), self.q.label(u));
        debug_assert!(ov
            .parent
            .is_none_or(|p| self.g.has_edge(self.mapping[p as usize], v)));
        if self.visited.contains(v) {
            self.pruning.on_conflict(depth, u, v);
            return ControlFlow::Continue(false);
        }
        // ValidateNT: probe the maintained neighborhood bitset of every
        // mapped non-tree endpoint — one bit test per check instead of a
        // binary search over the mapped vertex's adjacency list. Static
        // constraint lists only hold earlier-ordered (mapped) vertices, so
        // the mapped test compiles out; dynamic orders validate each
        // non-tree edge from whichever endpoint is mapped second.
        let constraints = self.ordering.constraints(ov);
        for &w in constraints {
            if O::DYNAMIC && self.mapping[w as usize] == UNMAPPED {
                continue;
            }
            self.nt_checks += 1;
            debug_assert_eq!(
                self.nt_mask[w as usize].contains(v),
                self.g.has_edge(self.mapping[w as usize], v)
            );
            if !self.nt_mask[w as usize].contains(v) {
                self.pruning.on_check_fail(depth, u, w);
                return ControlFlow::Continue(false);
            }
        }
        self.mapping[u as usize] = v;
        self.pos[u as usize] = cand_pos;
        self.visited.insert(v);
        self.pruning.on_mapped(u, v);
        let check_source = self.is_check_source[u as usize];
        if check_source {
            self.nt_mask[u as usize].insert_all(self.g.neighbors(v));
        }
        let emitted_before = self.emitted;
        let r = self.extend(depth + 1);
        if check_source {
            self.nt_mask[u as usize].remove_all(self.g.neighbors(v));
        }
        self.visited.remove(v);
        self.mapping[u as usize] = UNMAPPED;
        #[cfg(feature = "trace")]
        {
            self.tr.backtracks += 1;
        }
        let skip = self
            .pruning
            .after_child(depth, u, self.emitted > emitted_before);
        r?;
        ControlFlow::Continue(skip)
    }

    /// All core + forest vertices are mapped: run the leaf phase (or emit
    /// directly when there are no leaves).
    fn complete(&mut self) -> ControlFlow<Stop> {
        if self.plan.leaves.is_empty() {
            return self.emit();
        }
        let mut leaf = std::mem::replace(&mut self.leaf, LeafPhase::new(0));
        #[cfg(feature = "trace")]
        let leaf_start = Instant::now();
        let r = leaf.run(self);
        #[cfg(feature = "trace")]
        {
            self.tr.leaf_ns += leaf_start.elapsed().as_nanos() as u64;
        }
        self.leaf = leaf;
        r
    }

    /// Emits the current full mapping. Called by the leaf phase too.
    pub(crate) fn emit(&mut self) -> ControlFlow<Stop> {
        debug_assert!(self.mapping.iter().all(|&v| v != UNMAPPED));
        self.emitted += 1;
        let keep_going = match self.sink.as_mut() {
            Some(sink) => sink(&self.mapping),
            None => true,
        };
        if !keep_going || self.emitted >= self.max_embeddings {
            return ControlFlow::Break(Stop);
        }
        ControlFlow::Continue(())
    }

    /// Counting shortcut used by the leaf phase when no sink is installed:
    /// bump the emitted counter by `n` embeddings at once.
    pub(crate) fn emit_bulk(&mut self, n: u64) -> ControlFlow<Stop> {
        debug_assert!(self.sink.is_none());
        self.emitted = self.emitted.saturating_add(n);
        if self.emitted >= self.max_embeddings {
            self.emitted = self.emitted.min(self.max_embeddings);
            return ControlFlow::Break(Stop);
        }
        ControlFlow::Continue(())
    }

    /// Whether embeddings are materialized (sink present) or only counted.
    pub(crate) fn counting_only(&self) -> bool {
        self.sink.is_none()
    }

    /// Counts one search node attempted by the leaf phase. Leaf
    /// assignments sit outside the matching order, so the trace records
    /// them in `leaf_nodes` rather than the depth histogram.
    pub(crate) fn bump_node(&mut self) -> ControlFlow<Stop> {
        self.nodes += 1;
        #[cfg(feature = "trace")]
        {
            self.tr.leaf_nodes += 1;
        }
        if self.out_of_time() {
            return ControlFlow::Break(Stop);
        }
        ControlFlow::Continue(())
    }

    pub(crate) fn query(&self) -> &'a Graph {
        self.q
    }

    /// The data graph (used by leaf-match debug probes).
    pub(crate) fn data(&self) -> &'a Graph {
        self.g
    }

    pub(crate) fn cpi(&self) -> &'a Cpi {
        self.cpi
    }

    pub(crate) fn plan(&self) -> &'a OrderPlan {
        self.plan
    }

    /// Drains this enumerator's counters into a per-worker trace record,
    /// harvesting the thread's kernel-dispatch tally (the intersection
    /// kernels this worker ran since construction) along the way.
    #[cfg(feature = "trace")]
    pub(crate) fn take_trace(&mut self) -> cfl_trace::WorkerTrace {
        let tally = cfl_graph::intersect::tally::take();
        let mut counters = std::mem::take(&mut self.tr);
        counters.merge_hits += tally.merge;
        counters.gallop_hits += tally.gallop;
        counters.bitset_hits += tally.bitset;
        counters.simd_hits += tally.simd;
        counters.backjumps += self.pruning.backjumps();
        cfl_trace::WorkerTrace {
            embeddings: self.emitted,
            nodes: self.nodes,
            nt_checks: self.nt_checks,
            counters,
        }
    }
}

// Allow `?` on ControlFlow<Stop> inside this module (stable since 1.55 via
// the Try impl for ControlFlow).
