//! Parallel enumeration: workers steal root candidates from a shared
//! atomic cursor, each running an independent enumerator over the shared
//! CPI.
//!
//! The CPI and matching order are query-global and immutable after
//! preparation, so workers share them read-only; each worker owns its own
//! mapping/visited state. This extension is not part of the paper (which
//! evaluates single-threaded depth-first matching), but the root-candidate
//! decomposition falls directly out of the CPI structure: the subtrees of
//! search rooted at distinct root candidates are disjoint. A single
//! `fetch_add` cursor over the root candidate array replaces static
//! partitioning — per-root subtree costs are wildly skewed (a hub root
//! candidate can dominate the whole search), and with stealing a worker
//! that drew cheap subtrees immediately claims the next root instead of
//! idling behind a fixed stride.

use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::thread;

use cfl_graph::{Graph, VertexId};

use crate::config::MatchConfig;
use crate::error::Error;
use crate::result::{Embedding, MatchOutcome, MatchReport, MatchStats};

use super::enumerate::Enumerator;
use super::strategy::{dispatch_strategies, OrderingStrategy, PruningStrategy};
use super::{prepare, Prepared};

/// One worker's final tally, joined and merged after the scoped threads
/// finish. The trace record rides along only under the `trace` feature so
/// the default build moves exactly the four counters it always did.
struct WorkerResult {
    outcome: MatchOutcome,
    emitted: u64,
    nodes: u64,
    nt_checks: u64,
    #[cfg(feature = "trace")]
    trace: cfl_trace::WorkerTrace,
}

impl WorkerResult {
    fn from_enumerator<O: OrderingStrategy, P: PruningStrategy>(
        outcome: MatchOutcome,
        en: &mut Enumerator<'_, '_, O, P>,
    ) -> Self {
        WorkerResult {
            outcome,
            emitted: en.emitted,
            nodes: en.nodes,
            nt_checks: en.nt_checks,
            #[cfg(feature = "trace")]
            trace: en.take_trace(),
        }
    }
}

/// Counts embeddings of `q` in `g` using `num_threads` workers pulling
/// root candidates from a shared work-stealing cursor.
///
/// The count is exact and deterministic; only the internal work order
/// varies between runs. `num_threads` is taken as given (workers beyond
/// the number of root candidates simply find the cursor exhausted and exit
/// at startup cost only).
///
/// # Budget overshoot bound
///
/// The embedding budget is enforced *cooperatively*: each worker stops as
/// soon as its own emitted count reaches `max_embeddings`, and the final
/// tally is clamped to the cap. Workers do not observe each other's
/// counters, so between them they may enumerate up to
/// `num_threads × max_embeddings` embeddings before every worker has
/// stopped — that product bounds the extra work in the capped case, and
/// the reported count is never affected. Uncapped runs are unaffected.
pub fn count_embeddings_parallel(
    q: &Graph,
    g: &Graph,
    config: &MatchConfig,
    num_threads: usize,
) -> Result<MatchReport, Error> {
    // The enumeration workers exist anyway; let the build phase use them
    // too (unless the caller already asked for more build parallelism).
    let build_config = config
        .clone()
        .with_build_threads(num_threads.max(config.build_threads));
    let prepared = prepare(q, g, &build_config)?;
    if prepared.provably_empty() {
        return Ok(MatchReport::empty(prepared.stats));
    }
    let Prepared {
        cpi,
        plan,
        mut stats,
        ..
    } = prepared;

    let root = cpi.root();
    let num_roots = cpi.candidates(root).len();
    let workers = num_threads.max(1);
    let max = config.budget.max_embeddings.unwrap_or(u64::MAX);
    let cursor = AtomicU64::new(0);

    // Counting mode passes no sink, so each worker keeps the combinatorial
    // leaf-count shortcut (§4.4); see the doc comment for the cooperative
    // budget's `workers × max` overshoot bound.
    #[cfg(feature = "trace")]
    let _enum_span = cfl_trace::span::enter(cfl_trace::span::Phase::Enumerate);
    let enum_start = std::time::Instant::now();
    let results: Vec<WorkerResult> = dispatch_strategies!(config.ordering, config.pruning, O, P, {
        thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let cpi = &cpi;
                let plan = &plan;
                let cursor = &cursor;
                let budget = config.budget.clone();
                handles.push(scope.spawn(move || {
                    let mut en = Enumerator::<O, P>::new(q, g, cpi, plan, budget, None);
                    let outcome = en.run_stealing(cursor, num_roots);
                    WorkerResult::from_enumerator(outcome, &mut en)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        })
    });
    stats.enumeration_time = enum_start.elapsed();

    merge_reports(results, max, false, stats)
}

/// Collects embeddings in parallel (order nondeterministic), up to the
/// budget.
///
/// Work is distributed by the same root-candidate stealing cursor as
/// [`count_embeddings_parallel`], and the budget is enforced centrally by
/// the draining thread: workers are cancelled once the global collection
/// reaches the cap, so at most `num_threads × max_embeddings` embeddings
/// are *produced* in the worst case while exactly `max_embeddings` are
/// returned.
pub fn collect_embeddings_parallel(
    q: &Graph,
    g: &Graph,
    config: &MatchConfig,
    num_threads: usize,
) -> Result<(Vec<Embedding>, MatchReport), Error> {
    // See `count_embeddings_parallel`: build with the same parallelism.
    let build_config = config
        .clone()
        .with_build_threads(num_threads.max(config.build_threads));
    let prepared = prepare(q, g, &build_config)?;
    if prepared.provably_empty() {
        return Ok((Vec::new(), MatchReport::empty(prepared.stats)));
    }
    let Prepared {
        cpi,
        plan,
        mut stats,
        ..
    } = prepared;

    let root = cpi.root();
    let num_roots = cpi.candidates(root).len();
    let workers = num_threads.max(1);
    let max = config.budget.max_embeddings.unwrap_or(u64::MAX);
    let cursor = AtomicU64::new(0);

    // `Relaxed` suffices for the cancellation flag: it is a monotonic
    // false→true latch used only to stop workers *eventually* — the cap on
    // returned embeddings is enforced by the draining thread regardless of
    // when workers observe the flag, and the overshoot bound documented
    // above already assumes delayed observation. No other state is
    // published through it.
    let cancelled = AtomicBool::new(false);
    let (tx, rx) = crossbeam::channel::unbounded::<Vec<VertexId>>();

    #[cfg(feature = "trace")]
    let _enum_span = cfl_trace::span::enter(cfl_trace::span::Phase::Enumerate);
    let enum_start = std::time::Instant::now();
    let (mut collected, results) = dispatch_strategies!(config.ordering, config.pruning, O, P, {
        thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let cpi = &cpi;
                let plan = &plan;
                let cursor = &cursor;
                let cancelled = &cancelled;
                let tx = tx.clone();
                let budget = config.budget.clone();
                handles.push(scope.spawn(move || {
                    let mut sink = |m: &[VertexId]| {
                        tx.send(m.to_vec()).is_ok() && !cancelled.load(Ordering::Relaxed)
                    };
                    let mut en = Enumerator::<O, P>::new(q, g, cpi, plan, budget, Some(&mut sink));
                    let outcome = en.run_stealing(cursor, num_roots);
                    WorkerResult::from_enumerator(outcome, &mut en)
                }));
            }
            drop(tx);

            // Drain on this thread, enforcing the global cap.
            let mut collected: Vec<Embedding> = Vec::new();
            for mapping in &rx {
                if (collected.len() as u64) < max {
                    collected.push(Embedding { mapping });
                }
                if collected.len() as u64 >= max {
                    cancelled.store(true, Ordering::Relaxed);
                }
            }
            let results: Vec<WorkerResult> = handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect();
            (collected, results)
        })
    });
    stats.enumeration_time = enum_start.elapsed();

    collected.truncate(max.min(usize::MAX as u64) as usize);
    let count = collected.len() as u64;
    let mut report = merge_reports(results, max, cancelled.into_inner(), stats)?;
    report.embeddings = count;
    Ok((collected, report))
}

fn merge_reports(
    results: Vec<WorkerResult>,
    max: u64,
    cancelled: bool,
    mut stats: MatchStats,
) -> Result<MatchReport, Error> {
    let mut total = 0u64;
    let mut timed_out = false;
    let mut was_cancelled = false;
    let mut limited = cancelled;
    for r in results {
        total = total.saturating_add(r.emitted);
        stats.search_nodes += r.nodes;
        stats.nt_checks += r.nt_checks;
        #[cfg(feature = "trace")]
        if let Some(tr) = stats.trace.as_mut() {
            tr.workers.push(r.trace);
        }
        match r.outcome {
            MatchOutcome::Cancelled => was_cancelled = true,
            MatchOutcome::TimedOut => timed_out = true,
            MatchOutcome::LimitReached => limited = true,
            MatchOutcome::Complete => {}
        }
    }
    let outcome = if was_cancelled {
        MatchOutcome::Cancelled
    } else if timed_out {
        MatchOutcome::TimedOut
    } else if limited || total > max {
        MatchOutcome::LimitReached
    } else {
        MatchOutcome::Complete
    };
    Ok(MatchReport {
        outcome,
        embeddings: total.min(max),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Budget, MatchConfig};
    use cfl_graph::{graph_from_edges, synthetic_graph, SyntheticConfig};

    fn big_graph() -> Graph {
        synthetic_graph(&SyntheticConfig {
            num_vertices: 300,
            avg_degree: 6.0,
            num_labels: 3,
            label_exponent: 1.0,
            twin_fraction: 0.0,
            seed: 77,
        })
    }

    #[test]
    fn parallel_count_matches_serial() {
        let g = big_graph();
        let q = graph_from_edges(&[0, 1, 2, 0], &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let serial = crate::exec::count_embeddings(&q, &g, &MatchConfig::exhaustive())
            .unwrap()
            .embeddings;
        for threads in [1, 2, 4, 8] {
            let parallel =
                count_embeddings_parallel(&q, &g, &MatchConfig::exhaustive(), threads).unwrap();
            assert_eq!(parallel.embeddings, serial, "threads = {threads}");
            assert!(parallel.outcome.is_complete());
        }
    }

    #[test]
    fn parallel_collect_matches_serial_set() {
        let g = big_graph();
        let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let (serial, _) =
            crate::exec::collect_embeddings(&q, &g, &MatchConfig::exhaustive()).unwrap();
        let (parallel, report) =
            collect_embeddings_parallel(&q, &g, &MatchConfig::exhaustive(), 4).unwrap();
        let mut a: Vec<_> = serial.into_iter().map(|e| e.mapping).collect();
        let mut b: Vec<_> = parallel.into_iter().map(|e| e.mapping).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(report.embeddings, a.len() as u64);
    }

    #[test]
    fn parallel_budget_respected() {
        let g = big_graph();
        let q = graph_from_edges(&[0, 1], &[(0, 1)]).unwrap();
        let cfg = MatchConfig::default().with_budget(Budget::first(10));
        let (embs, report) = collect_embeddings_parallel(&q, &g, &cfg, 4).unwrap();
        assert_eq!(embs.len(), 10);
        assert_eq!(report.embeddings, 10);
        assert_eq!(report.outcome, MatchOutcome::LimitReached);
    }

    #[test]
    fn more_workers_than_roots_is_exact() {
        // Tiny data graph: the root candidate set is far smaller than the
        // worker count; surplus workers must drain the cursor and exit
        // without disturbing the count.
        let g = graph_from_edges(
            &[0, 1, 2, 0, 1, 2],
            &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)],
        )
        .unwrap();
        let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let serial = crate::exec::count_embeddings(&q, &g, &MatchConfig::exhaustive())
            .unwrap()
            .embeddings;
        let parallel = count_embeddings_parallel(&q, &g, &MatchConfig::exhaustive(), 16).unwrap();
        assert_eq!(parallel.embeddings, serial);
        assert!(parallel.outcome.is_complete());
    }

    #[test]
    fn parallel_empty_result() {
        let g = big_graph();
        let q = graph_from_edges(&[9, 9], &[(0, 1)]).unwrap();
        let r = count_embeddings_parallel(&q, &g, &MatchConfig::exhaustive(), 4).unwrap();
        assert_eq!(r.embeddings, 0);
        assert!(r.outcome.is_complete());
    }
}
