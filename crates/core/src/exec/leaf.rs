//! Leaf-match (§4.4).
//!
//! Given an embedding of the core and forest vertices, the remaining query
//! vertices are the leaf-set `V_I`. For each leaf `u` the candidate set is
//! `C(u) = N_u^{u.p}(M(u.p)) ∖ (M_C ∪ M_T)`. Leaves with the same parent
//! and label form an **NEC unit** (identical candidate sets); leaves are
//! partitioned by label into **label classes**, whose candidate sets are
//! pairwise disjoint (Lemma 4.3), so the embeddings of `V_I` are the
//! Cartesian product of per-class embeddings.
//!
//! Enumeration walks units sorted by `(label, |C|)` ascending; because
//! cross-class units can never conflict, marking data vertices in the
//! shared visited array makes the sequential walk produce exactly the
//! class-wise Cartesian product. In counting mode each NEC unit contributes
//! *combinations* multiplied by `k!`, so counts are obtained without
//! expanding permutations — the compression the paper introduces to avoid
//! redundant Cartesian products among leaves.

use std::ops::ControlFlow;

use cfl_graph::intersect::retain_unset_into;
use cfl_graph::{Label, VertexId};

use super::enumerate::{Enumerator, Stop, UNMAPPED};
use super::strategy::{OrderingStrategy, PruningStrategy};

/// One NEC unit: leaves sharing a parent and a label.
struct Unit {
    members: Vec<VertexId>,
    cands: Vec<VertexId>,
    label: Label,
    parent: VertexId,
}

impl Unit {
    fn empty() -> Self {
        Unit {
            members: Vec::new(),
            cands: Vec::new(),
            label: Label(0),
            parent: 0,
        }
    }
}

/// Reusable leaf-phase machinery (scratch buffers persist across the many
/// core/forest embeddings of one run).
pub(crate) struct LeafPhase {
    units: Vec<Unit>,
    pool: Vec<Unit>,
    /// Scratch for translating one adjacency row to data-vertex ids.
    ids: Vec<VertexId>,
}

impl LeafPhase {
    pub(crate) fn new(_query_size: usize) -> Self {
        LeafPhase {
            units: Vec::new(),
            pool: Vec::new(),
            ids: Vec::new(),
        }
    }

    /// Runs the leaf phase for the current core+forest embedding in `en`.
    pub(crate) fn run<O: OrderingStrategy, P: PruningStrategy>(
        &mut self,
        en: &mut Enumerator<'_, '_, O, P>,
    ) -> ControlFlow<Stop> {
        if !self.build_units(en) {
            self.recycle();
            return ControlFlow::Continue(());
        }
        let r = if en.counting_only() {
            match self.count_all(en, 0) {
                ControlFlow::Continue(count) => en.emit_bulk(count),
                ControlFlow::Break(stop) => ControlFlow::Break(stop),
            }
        } else {
            self.assign(en, 0, 0)
        };
        self.recycle();
        r
    }

    fn recycle(&mut self) {
        for mut u in self.units.drain(..) {
            u.members.clear();
            u.cands.clear();
            self.pool.push(u);
        }
    }

    /// Computes `C(u)` for every leaf and groups leaves into NEC units;
    /// returns `false` when some unit cannot be satisfied.
    fn build_units<O: OrderingStrategy, P: PruningStrategy>(
        &mut self,
        en: &mut Enumerator<'_, '_, O, P>,
    ) -> bool {
        let cpi = en.cpi();
        let q = en.query();
        debug_assert!(self.units.is_empty());

        for i in 0..en.plan().leaves.len() {
            let u = en.plan().leaves[i];
            let Some(p) = cpi.parent(u) else {
                unreachable!("leaves are never the root");
            };
            let label = q.label(u);
            // NEC: same parent + same label ⇒ identical candidate set.
            if let Some(unit) = self
                .units
                .iter_mut()
                .find(|un| un.parent == p && un.label == label)
            {
                unit.members.push(u);
                continue;
            }
            let mut unit = self.pool.pop().unwrap_or_else(Unit::empty);
            unit.parent = p;
            unit.label = label;
            unit.members.push(u);
            let parent_pos = en.pos[p as usize] as usize;
            // `C(u) = N_u^{u.p}(M(u.p)) ∖ visited`: translate the row to
            // data-vertex ids, then take the set difference with the shared
            // intersection kernel.
            self.ids.clear();
            self.ids.extend(
                cpi.row(u, parent_pos)
                    .iter()
                    .map(|&cand_pos| cpi.candidates(u)[cand_pos as usize]),
            );
            // Cheap invariant probe: every unit candidate is adjacent to
            // the mapped parent.
            debug_assert!(self
                .ids
                .iter()
                .all(|&v| en.data().has_edge(en.mapping[p as usize], v)));
            retain_unset_into(&self.ids, &en.visited, &mut unit.cands);
            self.units.push(unit);
        }

        // Feasibility: each unit needs at least |members| candidates.
        if self
            .units
            .iter()
            .any(|un| un.cands.len() < un.members.len())
        {
            return false;
        }

        // Sort by (label, |C|): groups label classes together and applies
        // the paper's fewest-candidates-first heuristic within each class.
        self.units.sort_by_key(|a| (a.label, a.cands.len()));
        true
    }

    /// Enumeration mode: assign member `mi` of unit `ui`, then recurse.
    fn assign<O: OrderingStrategy, P: PruningStrategy>(
        &self,
        en: &mut Enumerator<'_, '_, O, P>,
        ui: usize,
        mi: usize,
    ) -> ControlFlow<Stop> {
        if ui == self.units.len() {
            return en.emit();
        }
        let unit = &self.units[ui];
        let member = unit.members[mi];
        let (next_ui, next_mi) = if mi + 1 < unit.members.len() {
            (ui, mi + 1)
        } else {
            (ui + 1, 0)
        };
        for &v in &unit.cands {
            if en.visited.contains(v) {
                continue;
            }
            en.bump_node()?;
            en.visited.insert(v);
            en.mapping[member as usize] = v;
            let r = self.assign(en, next_ui, next_mi);
            en.visited.remove(v);
            en.mapping[member as usize] = UNMAPPED;
            r?;
        }
        ControlFlow::Continue(())
    }

    /// Counting mode: number of leaf assignments for units `ui..`, using
    /// combination enumeration × `k!` per NEC unit.
    ///
    /// Units of different labels never conflict, so this product could be
    /// factorized per label class; the visited-marking recursion realizes
    /// the same result because cross-class choices never block each other.
    fn count_all<O: OrderingStrategy, P: PruningStrategy>(
        &self,
        en: &mut Enumerator<'_, '_, O, P>,
        ui: usize,
    ) -> ControlFlow<Stop, u64> {
        if ui == self.units.len() {
            return ControlFlow::Continue(1);
        }
        let unit = &self.units[ui];
        let k = unit.members.len();
        let sub = self.count_combinations(en, ui, 0, k)?;
        ControlFlow::Continue(sub.saturating_mul(factorial(k)))
    }

    /// Chooses `remaining` distinct candidates for unit `ui` with indices
    /// starting at `start` (combinations, not permutations), then recurses
    /// into the next unit.
    fn count_combinations<O: OrderingStrategy, P: PruningStrategy>(
        &self,
        en: &mut Enumerator<'_, '_, O, P>,
        ui: usize,
        start: usize,
        remaining: usize,
    ) -> ControlFlow<Stop, u64> {
        if remaining == 0 {
            return self.count_all(en, ui + 1);
        }
        let unit = &self.units[ui];
        let mut total: u64 = 0;
        // Not enough candidates left to fill the unit → prune.
        if unit.cands.len() < start + remaining {
            return ControlFlow::Continue(0);
        }
        for i in start..=unit.cands.len() - remaining {
            let v = unit.cands[i];
            if en.visited.contains(v) {
                continue;
            }
            en.bump_node()?;
            en.visited.insert(v);
            let r = self.count_combinations(en, ui, i + 1, remaining - 1);
            en.visited.remove(v);
            total = total.saturating_add(r?);
        }
        ControlFlow::Continue(total)
    }
}

fn factorial(k: usize) -> u64 {
    (2..=k as u64).product::<u64>().max(1)
}

#[cfg(test)]
mod tests {
    use super::factorial;

    #[test]
    fn factorial_values() {
        assert_eq!(factorial(0), 1);
        assert_eq!(factorial(1), 1);
        assert_eq!(factorial(2), 2);
        assert_eq!(factorial(5), 120);
    }
}
