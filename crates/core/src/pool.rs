//! Persistent worker pool for the CPI build phase.
//!
//! CPI construction is level-synchronous: each BFS level runs three short
//! phases (candidate generation, S-NTE pruning, row construction) with a
//! barrier between them, so a build issues many small fork/join rounds.
//! Spawning OS threads per round would cost more than the rounds
//! themselves; instead a single process-wide pool keeps detached workers
//! parked on a condvar and wakes them per round. The caller always
//! participates in the work, so a round on an otherwise-idle machine never
//! waits on a worker being scheduled.
//!
//! [`parallel_map`] is the only entry point the build code uses: it runs a
//! per-index task over `0..n`, stealing indices from a shared atomic
//! cursor, and returns the results in index order — output is therefore
//! independent of how work was interleaved, which is what makes parallel
//! CPI builds byte-identical to serial ones. It also clamps worker count to
//! the host's available parallelism: oversubscribing a small machine would
//! only add wakeup latency, and the thread-count knob must never change
//! results, only speed.
//!
//! # Mechanized soundness
//!
//! The offer/park/claim/finish protocol below is checked by the loom
//! models in [`crate::models`] (`cargo test -p cfl-match --features
//! loom-model`): no lost wakeups, no job-slot dereference after
//! [`parallel_map`] returns, every index claimed exactly once, and
//! index-ordered commit determinism. `docs/SOUNDNESS.md` catalogs the
//! models; every `// SAFETY:` comment here names the model that exercises
//! its invariant.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::{thread, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Upper bound on pool workers, a backstop against absurd `--threads`
/// values; real clamping happens against available parallelism.
const MAX_WORKERS: usize = 15;

/// Type- and lifetime-erased pointer to a caller's job closure, parked in
/// [`State::job`] while workers may still claim it.
///
/// This replaces an earlier `transmute` to `&'static dyn Fn()`: a raw
/// pointer makes the lie explicit — the pointee is a stack-allocated
/// closure in some caller's [`Pool::run`] frame, and nothing about the
/// type promises it outlives that frame. The erasure is a thin
/// `*const ()` plus a monomorphized trampoline (a hand-rolled vtable of
/// one entry), so no lifetime is ever transmuted; the discipline that
/// makes the dereference sound lives entirely in the pool protocol (see
/// [`JobPtr::call`]).
#[derive(Clone, Copy)]
struct JobPtr {
    /// The caller's closure, type-erased to a thin pointer.
    data: *const (),
    /// Casts `data` back to the concrete closure type and invokes it.
    invoke: unsafe fn(*const ()),
}

// SAFETY: the pointer is only ever (a) written into `State.job` under the
// state mutex by `Pool::run`, (b) read back under the same mutex by
// `worker_loop`, and (c) dereferenced between a `running += 1` and a
// `running -= 1` transition, while `Pool::run`'s `JobGuard` blocks the
// owning frame from returning until `running == 0` with the slot cleared.
// The pointee is `Sync` (bound on construction), so concurrent shared
// calls are fine, and no `&mut` to the closure exists anywhere. The
// `job_slot_never_outlives_run` loom model drives every interleaving of
// this handoff and asserts the closure is never entered after `run`
// returns.
unsafe impl Send for JobPtr {}

impl JobPtr {
    fn new<F: Fn() + Sync>(work: &F) -> JobPtr {
        // SAFETY contract of `trampoline`: `p` must be the `data` pointer
        // of the `JobPtr` built below, still alive per `JobPtr::call`.
        unsafe fn trampoline<F: Fn()>(p: *const ()) {
            // SAFETY: `p` was produced from `&F` in `JobPtr::new` for this
            // very instantiation of `F` (the pointer and the trampoline
            // travel together), and `JobPtr::call`'s contract guarantees
            // the pointee is still alive.
            unsafe { (*p.cast::<F>())() }
        }
        JobPtr {
            data: std::ptr::from_ref(work).cast(),
            invoke: trampoline::<F>,
        }
    }

    /// Invokes the job.
    ///
    /// # Safety
    /// The caller must hold a `running` registration taken under the state
    /// mutex while the slot was populated (the worker-claim transition in
    /// [`Pool::worker_loop`]); that registration is what keeps the
    /// caller's frame — and thus the pointee — alive until the matching
    /// `running -= 1`. Checked by the `job_slot_never_outlives_run` loom
    /// model, which fails if any schedule lets a worker enter the closure
    /// after [`Pool::run`] has returned.
    unsafe fn call(self) {
        unsafe { (self.invoke)(self.data) }
    }
}

struct State {
    /// The job currently offered to workers, if any.
    job: Option<JobPtr>,
    /// Worker claims still wanted for the current job.
    wanted: usize,
    /// Workers currently inside the job closure.
    running: usize,
    /// Workers spawned so far (they never exit in production; model pools
    /// retire them via `shutdown`).
    spawned: usize,
    /// Test/model hook: tells parked workers to exit instead of waiting
    /// for the next job. Never set on the global pool.
    shutdown: bool,
}

pub(crate) struct Pool {
    state: Mutex<State>,
    /// Signaled when a job is posted (or the pool shuts down).
    work_ready: Condvar,
    /// Signaled when the last running worker leaves a job.
    work_done: Condvar,
}

/// Mutex poisoning only happens if a panic escaped a lock region; the state
/// machine stays consistent (every transition is a single guarded update),
/// so recover the guard rather than propagating the poison.
fn lock(m: &Mutex<State>) -> MutexGuard<'_, State> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(Pool::new)
}

/// Extra workers worth engaging beyond the calling thread on this host.
fn available_extra() -> usize {
    // Relaxed is sufficient: this is a single-variable idempotent cache.
    // Every writer stores the same host-derived value, readers that race
    // the first write just recompute it, and no other memory location is
    // published through this flag.
    static CACHED: AtomicUsize = AtomicUsize::new(usize::MAX);
    let mut v = CACHED.load(Ordering::Relaxed);
    if v == usize::MAX {
        v = thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .saturating_sub(1);
        CACHED.store(v, Ordering::Relaxed);
    }
    v
}

/// Ensures the cleanup handshake runs even if the caller's own share of the
/// work panics; otherwise workers could dereference the job pointer after
/// the caller's stack frame is gone.
struct JobGuard<'a>(&'a Pool);

impl Drop for JobGuard<'_> {
    fn drop(&mut self) {
        let mut st = lock(&self.0.state);
        st.wanted = 0; // withdraw unclaimed offers
        st.job = None;
        while st.running > 0 {
            st = self
                .0
                .work_done
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl Pool {
    fn new() -> Pool {
        Pool {
            state: Mutex::new(State {
                job: None,
                wanted: 0,
                running: 0,
                spawned: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        }
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut st = lock(&self.state);
                loop {
                    if st.shutdown {
                        return;
                    }
                    if st.wanted > 0 {
                        if let Some(job) = st.job {
                            st.wanted -= 1;
                            st.running += 1;
                            break job;
                        }
                    }
                    st = self
                        .work_ready
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            // A panicking task must not wedge the pool: swallow it here and
            // let the caller detect the missing result (`parallel_map`
            // asserts completeness).
            //
            // SAFETY: `running` was incremented for this worker in the same
            // critical section that read the slot, so the caller's frame is
            // pinned until the decrement below (see `JobPtr::call`).
            let _ = catch_unwind(AssertUnwindSafe(|| unsafe { job.call() }));
            let mut st = lock(&self.state);
            st.running -= 1;
            if st.running == 0 {
                self.work_done.notify_all();
            }
        }
    }

    /// Runs `work` on the calling thread and on up to `extra` pool workers
    /// concurrently; returns after every participant has left the closure.
    /// `work` must be a self-contained steal loop: each participant calls
    /// it once and it exits when the shared cursor runs dry.
    ///
    /// If the pool is already serving another caller, this degrades to
    /// running `work` on the caller alone — correct because every caller's
    /// closure performs the complete task set by itself if unassisted.
    fn run<F: Fn() + Sync>(&self, extra: usize, work: &F) {
        if extra == 0 {
            work();
            return;
        }
        {
            let mut st = lock(&self.state);
            if st.job.is_some() || st.running > 0 {
                drop(st);
                work();
                return;
            }
            // The borrow is erased here and re-scoped by the protocol: the
            // `JobGuard` below (dropped before `run` returns, on panic too)
            // clears the slot under the lock and then blocks until
            // `running == 0`, and workers only obtain the pointer under the
            // same lock while the slot is populated. See `JobPtr`.
            st.job = Some(JobPtr::new(work));
            st.wanted = extra.min(MAX_WORKERS);
            while st.spawned < st.wanted {
                let spawned = thread::Builder::new()
                    .name(format!("cfl-build-{}", st.spawned))
                    .spawn(|| pool().worker_loop())
                    .is_ok();
                if !spawned {
                    // Out of threads: offer the job to who we have.
                    st.wanted = st.spawned;
                    break;
                }
                st.spawned += 1;
            }
            self.work_ready.notify_all();
        }
        let guard = JobGuard(self);
        work();
        drop(guard);
    }
}

/// Model hooks: a private pool whose workers are owned (joinable)
/// threads, so a loom model can create, drive, and fully retire one per
/// schedule. Production code always goes through the global [`pool()`].
#[cfg(all(test, feature = "loom-model"))]
pub(crate) mod hooks {
    use super::*;
    use crate::sync::Arc;

    /// An owned pool plus its worker handles.
    pub(crate) struct OwnedPool {
        pub(crate) pool: Arc<Pool>,
        workers: Vec<thread::JoinHandle<()>>,
    }

    impl OwnedPool {
        /// Creates a pool with exactly `workers` pre-spawned workers; the
        /// lazy spawn path in [`Pool::run`] is then never taken (the model
        /// scheduler must know every participating thread).
        pub(crate) fn with_workers(workers: usize) -> OwnedPool {
            let pool = Arc::new(Pool::new());
            lock(&pool.state).spawned = workers;
            let handles = (0..workers)
                .map(|_| {
                    let p = Arc::clone(&pool);
                    thread::spawn(move || p.worker_loop())
                })
                .collect();
            OwnedPool {
                pool,
                workers: handles,
            }
        }

        /// Pre-spawned worker count, for the `extra` cap in
        /// [`super::parallel_map_model`].
        pub(crate) fn worker_count(&self) -> usize {
            self.workers.len()
        }

        /// Retires the workers: park-exit handshake, then join.
        pub(crate) fn shutdown(self) {
            {
                let mut st = lock(&self.pool.state);
                st.shutdown = true;
            }
            self.pool.work_ready.notify_all();
            for h in self.workers {
                let _ = h.join();
            }
        }
    }
}

/// The steal-loop body shared by [`parallel_map`] and the loom models:
/// claim indices from `cursor` until it runs dry, buffering `(i, f(i))`
/// locally and appending to the shared results under the lock on exit.
///
/// # Why `Relaxed` suffices for the claim cursor
///
/// `fetch_add` is an atomic read-modify-write: every participant observes
/// a *distinct* value of the cursor's modification order, a guarantee the
/// C++/Rust memory model gives RMWs at **any** ordering, including
/// `Relaxed` — so no index can be claimed twice or skipped regardless of
/// scheduling. The claimed index is only used to (a) read immutable shared
/// state captured by `f` and (b) tag the locally produced result; the
/// result itself is published through `results`'s mutex, whose
/// acquire/release pair provides all the cross-variable ordering the
/// consumer needs. The cursor therefore orders nothing but itself, which
/// is exactly what `Relaxed` promises. The `cursor_claims_exactly_once`
/// loom model checks claim uniqueness, and `cursor_overshoot_is_bounded`
/// checks the companion bound: each participant performs at most one
/// over-the-end `fetch_add` before exiting, so the cursor's final value
/// never exceeds `n + participants`.
fn steal_loop<T, F>(cursor: &AtomicUsize, results: &Mutex<Vec<(usize, T)>>, n: usize, f: &F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut local: Vec<(usize, T)> = Vec::new();
    loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        local.push((i, f(i)));
    }
    if !local.is_empty() {
        results
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .append(&mut local);
    }
}

/// [`parallel_map`] against an explicit pool: the shared implementation
/// behind the public clamped entry point, the forced test variant, and the
/// loom models (which pass an owned model pool).
fn parallel_map_on<T, F>(pool: &Pool, extra: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if extra == 0 || n == 0 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    let work = || steal_loop(&cursor, &results, n, &f);
    pool.run(extra, &work);
    let mut v = results.into_inner().unwrap_or_else(PoisonError::into_inner);
    assert_eq!(v.len(), n, "a worker task panicked");
    v.sort_unstable_by_key(|&(i, _)| i);
    v.into_iter().map(|(_, t)| t).collect()
}

/// Runs `f(i)` for every `i in 0..n` across `threads` participants
/// (capped at the host's available parallelism) and returns the results in
/// index order. Indices are claimed from an atomic cursor, so scheduling
/// affects only *who* computes a result, never *what* is computed or where
/// it lands — the property the byte-identical parallel CPI build rests on
/// (the `commit_order_is_deterministic` loom model asserts it for every
/// schedule).
///
/// # Panics
/// Panics if any task panicked (on the caller's thread, with the caller's
/// task's payload, or via a completeness assertion for worker tasks).
pub(crate) fn parallel_map<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let extra = threads
        .saturating_sub(1)
        .min(n.saturating_sub(1))
        .min(available_extra());
    parallel_map_on(pool(), extra, n, f)
}

/// Like [`parallel_map`] but without the availability clamp — test hook so
/// the concurrent claim/steal/cleanup protocol is exercised even on hosts
/// that report a single core.
#[cfg(test)]
pub(crate) fn parallel_map_forced<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_on(pool(), threads.saturating_sub(1), n, f)
}

/// Model hook: [`parallel_map`] against an owned pool (loom models build
/// one per schedule so the scheduler owns every participating thread).
/// `extra` must not exceed the pre-spawned worker count: the lazy top-up
/// in [`Pool::run`] would otherwise spawn workers serving the *global*
/// pool, which the model scheduler would flag as leaked.
#[cfg(all(test, feature = "loom-model"))]
pub(crate) fn parallel_map_model<T, F>(
    owned: &hooks::OwnedPool,
    extra: usize,
    n: usize,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(extra <= owned.worker_count());
    parallel_map_on(&owned.pool, extra, n, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_is_in_index_order_serial_and_parallel() {
        let serial = parallel_map(1, 100, |i| i * i);
        assert_eq!(serial, (0..100).map(|i| i * i).collect::<Vec<_>>());
        let par = parallel_map_forced(4, 100, |i| i * i);
        assert_eq!(par, serial);
    }

    #[test]
    fn every_task_runs_exactly_once_under_contention() {
        // 4 participants racing over tiny tasks across repeated rounds —
        // exercises claim, steal, cleanup and re-offer paths for real.
        for _ in 0..50 {
            let hits: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
            let out = parallel_map_forced(4, hits.len(), |i| {
                hits[i].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                i
            });
            assert_eq!(out, (0..hits.len()).collect::<Vec<_>>());
            assert!(hits
                .iter()
                .all(|h| h.load(std::sync::atomic::Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn empty_and_single_task_sets() {
        assert_eq!(parallel_map(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(8, 1, |i| i + 7), vec![7]);
        assert_eq!(parallel_map_forced(8, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn nested_calls_degrade_to_serial() {
        // An inner parallel_map issued while the pool serves the outer one
        // must fall back to the caller-only path, not deadlock.
        let out = parallel_map_forced(3, 8, |i| parallel_map_forced(3, 4, move |j| i * 10 + j));
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(inner, &(0..4).map(|j| i * 10 + j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn caller_panic_leaves_pool_usable() {
        let boom = catch_unwind(AssertUnwindSafe(|| {
            parallel_map_forced(4, 64, |i| {
                if i == 0 {
                    panic!("task failure");
                }
                i
            })
        }));
        assert!(boom.is_err());
        // Pool must have been cleaned up by the guard and serve new jobs.
        let ok = parallel_map_forced(4, 64, |i| i);
        assert_eq!(ok, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates_without_deadlock() {
        // A task that panics on a *pool worker* (not the caller) is
        // swallowed by the worker's catch_unwind; the caller must then
        // fail the completeness assertion rather than hang a parked round
        // or leak it. Caller-run tasks stall (bounded) so a worker gets a
        // chance to claim an index; if the pool happens to be busy with a
        // concurrent test and no worker ever joins, the round completes
        // caller-only and we simply retry.
        use std::sync::atomic::{AtomicBool, Ordering as StdOrdering};
        for round in 0..8 {
            let worker_engaged = AtomicBool::new(false);
            let result = catch_unwind(AssertUnwindSafe(|| {
                parallel_map_forced(4, 96, |i| {
                    let on_worker = std::thread::current()
                        .name()
                        .is_some_and(|n| n.starts_with("cfl-build-"));
                    if on_worker {
                        worker_engaged.store(true, StdOrdering::Relaxed);
                        panic!("worker task failure (round {round})");
                    }
                    // Give workers time to claim at least one index, but
                    // never wait unboundedly on them showing up.
                    let mut spins = 0u32;
                    while !worker_engaged.load(StdOrdering::Relaxed) && spins < 100_000 {
                        std::hint::spin_loop();
                        spins += 1;
                    }
                    i
                })
            }));
            if worker_engaged.load(StdOrdering::Relaxed) {
                // The worker's panic was converted into the caller-side
                // completeness panic — never a deadlock, never silence.
                let msg = result.err().map(|p| {
                    p.downcast_ref::<String>().cloned().unwrap_or_else(|| {
                        p.downcast_ref::<&str>()
                            .map_or_else(|| "<non-string>".to_owned(), |s| (*s).to_owned())
                    })
                });
                let msg = msg.unwrap_or_default();
                assert!(
                    msg.contains("worker task panicked"),
                    "expected completeness panic, got: {msg}"
                );
                // And the pool must serve subsequent rounds.
                let ok = parallel_map_forced(4, 32, |i| i);
                assert_eq!(ok, (0..32).collect::<Vec<_>>());
                return;
            }
            // No worker engaged (single-core scheduling fluke): retry.
        }
        // Even if contention never materialized, the pool must be healthy.
        let ok = parallel_map_forced(4, 32, |i| i);
        assert_eq!(ok, (0..32).collect::<Vec<_>>());
    }
}
