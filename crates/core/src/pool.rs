//! Persistent worker pool for the CPI build phase.
//!
//! CPI construction is level-synchronous: each BFS level runs three short
//! phases (candidate generation, S-NTE pruning, row construction) with a
//! barrier between them, so a build issues many small fork/join rounds.
//! Spawning OS threads per round would cost more than the rounds
//! themselves; instead a single process-wide pool keeps detached workers
//! parked on a condvar and wakes them per round. The caller always
//! participates in the work, so a round on an otherwise-idle machine never
//! waits on a worker being scheduled.
//!
//! [`parallel_map`] is the only entry point the build code uses: it runs a
//! per-index task over `0..n`, stealing indices from a shared atomic
//! cursor, and returns the results in index order — output is therefore
//! independent of how work was interleaved, which is what makes parallel
//! CPI builds byte-identical to serial ones. It also clamps worker count to
//! the host's available parallelism: oversubscribing a small machine would
//! only add wakeup latency, and the thread-count knob must never change
//! results, only speed.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

/// Upper bound on pool workers, a backstop against absurd `--threads`
/// values; real clamping happens against available parallelism.
const MAX_WORKERS: usize = 15;

struct State {
    /// The job currently offered to workers. `'static` is a lie told under
    /// lock discipline — see the safety comment in [`Pool::run`].
    job: Option<&'static (dyn Fn() + Sync)>,
    /// Worker claims still wanted for the current job.
    wanted: usize,
    /// Workers currently inside the job closure.
    running: usize,
    /// Workers spawned so far (they never exit).
    spawned: usize,
}

struct Pool {
    state: Mutex<State>,
    /// Signaled when a job is posted.
    work_ready: Condvar,
    /// Signaled when the last running worker leaves a job.
    work_done: Condvar,
}

/// Mutex poisoning only happens if a panic escaped a lock region; the state
/// machine stays consistent (every transition is a single guarded update),
/// so recover the guard rather than propagating the poison.
fn lock(m: &Mutex<State>) -> MutexGuard<'_, State> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(State {
            job: None,
            wanted: 0,
            running: 0,
            spawned: 0,
        }),
        work_ready: Condvar::new(),
        work_done: Condvar::new(),
    })
}

/// Extra workers worth engaging beyond the calling thread on this host.
fn available_extra() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(usize::MAX);
    let mut v = CACHED.load(Ordering::Relaxed);
    if v == usize::MAX {
        v = std::thread::available_parallelism()
            .map_or(1, std::num::NonZero::get)
            .saturating_sub(1);
        CACHED.store(v, Ordering::Relaxed);
    }
    v
}

/// Ensures the cleanup handshake runs even if the caller's own share of the
/// work panics; otherwise workers could dereference the job pointer after
/// the caller's stack frame is gone.
struct JobGuard<'a>(&'a Pool);

impl Drop for JobGuard<'_> {
    fn drop(&mut self) {
        let mut st = lock(&self.0.state);
        st.wanted = 0; // withdraw unclaimed offers
        st.job = None;
        while st.running > 0 {
            st = self
                .0
                .work_done
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

impl Pool {
    fn worker_loop(&self) {
        loop {
            let job = {
                let mut st = lock(&self.state);
                loop {
                    if st.wanted > 0 {
                        if let Some(job) = st.job {
                            st.wanted -= 1;
                            st.running += 1;
                            break job;
                        }
                    }
                    st = self
                        .work_ready
                        .wait(st)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            // A panicking task must not wedge the pool: swallow it here and
            // let the caller detect the missing result (`parallel_map`
            // asserts completeness).
            let _ = catch_unwind(AssertUnwindSafe(job));
            let mut st = lock(&self.state);
            st.running -= 1;
            if st.running == 0 {
                self.work_done.notify_all();
            }
        }
    }

    /// Runs `work` on the calling thread and on up to `extra` pool workers
    /// concurrently; returns after every participant has left the closure.
    /// `work` must be a self-contained steal loop: each participant calls
    /// it once and it exits when the shared cursor runs dry.
    ///
    /// If the pool is already serving another caller, this degrades to
    /// running `work` on the caller alone — correct because every caller's
    /// closure performs the complete task set by itself if unassisted.
    fn run(&self, extra: usize, work: &(dyn Fn() + Sync)) {
        if extra == 0 {
            work();
            return;
        }
        {
            let mut st = lock(&self.state);
            if st.job.is_some() || st.running > 0 {
                drop(st);
                work();
                return;
            }
            // SAFETY: the `'static` lifetime is fabricated so the borrow
            // can sit in the shared state. It never outlives the real
            // borrow: `JobGuard` (dropped before `run` returns, on panic
            // too) clears the slot under lock and then blocks until
            // `running == 0`, and workers only obtain the pointer under
            // the same lock while the slot is populated.
            let work_static: &'static (dyn Fn() + Sync) =
                unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &(dyn Fn() + Sync)>(work) };
            st.job = Some(work_static);
            st.wanted = extra.min(MAX_WORKERS);
            while st.spawned < st.wanted {
                let spawned = std::thread::Builder::new()
                    .name(format!("cfl-build-{}", st.spawned))
                    .spawn(|| pool().worker_loop())
                    .is_ok();
                if !spawned {
                    // Out of threads: offer the job to who we have.
                    st.wanted = st.spawned;
                    break;
                }
                st.spawned += 1;
            }
            self.work_ready.notify_all();
        }
        let guard = JobGuard(self);
        work();
        drop(guard);
    }
}

/// Runs `f(i)` for every `i in 0..n` across `threads` participants
/// (capped at the host's available parallelism) and returns the results in
/// index order. Indices are claimed from an atomic cursor, so scheduling
/// affects only *who* computes a result, never *what* is computed or where
/// it lands — the property the byte-identical parallel CPI build rests on.
///
/// # Panics
/// Panics if any task panicked (on the caller's thread, with the caller's
/// task's payload, or via a completeness assertion for worker tasks).
pub(crate) fn parallel_map<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let extra = threads
        .saturating_sub(1)
        .min(n.saturating_sub(1))
        .min(available_extra());
    if extra == 0 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    let work = || {
        let mut local: Vec<(usize, T)> = Vec::new();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            local.push((i, f(i)));
        }
        if !local.is_empty() {
            results
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .append(&mut local);
        }
    };
    pool().run(extra, &work);
    let mut v = results
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    assert_eq!(v.len(), n, "a worker task panicked");
    v.sort_unstable_by_key(|&(i, _)| i);
    v.into_iter().map(|(_, t)| t).collect()
}

/// Like [`parallel_map`] but without the availability clamp — test hook so
/// the concurrent claim/steal/cleanup protocol is exercised even on hosts
/// that report a single core.
#[cfg(test)]
pub(crate) fn parallel_map_forced<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let extra = threads.saturating_sub(1);
    if extra == 0 || n == 0 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    let work = || loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let r = (i, f(i));
        results
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(r);
    };
    pool().run(extra, &work);
    let mut v = results
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    assert_eq!(v.len(), n, "a worker task panicked");
    v.sort_unstable_by_key(|&(i, _)| i);
    v.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_is_in_index_order_serial_and_parallel() {
        let serial = parallel_map(1, 100, |i| i * i);
        assert_eq!(serial, (0..100).map(|i| i * i).collect::<Vec<_>>());
        let par = parallel_map_forced(4, 100, |i| i * i);
        assert_eq!(par, serial);
    }

    #[test]
    fn every_task_runs_exactly_once_under_contention() {
        // 4 participants racing over tiny tasks across repeated rounds —
        // exercises claim, steal, cleanup and re-offer paths for real.
        for _ in 0..50 {
            let hits: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
            let out = parallel_map_forced(4, hits.len(), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
                i
            });
            assert_eq!(out, (0..hits.len()).collect::<Vec<_>>());
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn empty_and_single_task_sets() {
        assert_eq!(parallel_map(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(8, 1, |i| i + 7), vec![7]);
        assert_eq!(parallel_map_forced(8, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn nested_calls_degrade_to_serial() {
        // An inner parallel_map issued while the pool serves the outer one
        // must fall back to the caller-only path, not deadlock.
        let out = parallel_map_forced(3, 8, |i| parallel_map_forced(3, 4, move |j| i * 10 + j));
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(inner, &(0..4).map(|j| i * 10 + j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn caller_panic_leaves_pool_usable() {
        let boom = catch_unwind(AssertUnwindSafe(|| {
            parallel_map_forced(4, 64, |i| {
                if i == 0 {
                    panic!("task failure");
                }
                i
            })
        }));
        assert!(boom.is_err());
        // Pool must have been cleaned up by the guard and serve new jobs.
        let ok = parallel_map_forced(4, 64, |i| i);
        assert_eq!(ok, (0..64).collect::<Vec<_>>());
    }
}
