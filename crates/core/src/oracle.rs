//! Differential-testing hooks for external harnesses (feature `oracle`).
//!
//! The `cfl-fuzz` crate needs to compare the production flat-arena CPI
//! freeze against the naive nested reference representation, which lives
//! behind crate-private APIs. This module packages that comparison as a
//! single self-contained check so the internals stay private. It is **not
//! a stable API** and is compiled only under the `oracle` feature.

use cfl_graph::{Graph, VertexId};

use crate::cpi::{refine, topdown};
use crate::filters::{FilterContext, GraphStats};

/// Builds the CPI for `(q, g)` twice — through the production flat-arena
/// freeze and through the nested reference freeze — and verifies they are
/// element-for-element equal, both before and after bottom-up refinement.
///
/// `q` must be connected and non-empty (callers generate queries by
/// spanning tree, so this holds by construction). Returns a description of
/// the first divergence found.
///
/// # Errors
/// An `Err` is a real differential finding: the flat freeze and the nested
/// reference disagree on candidates or rows.
pub fn flat_matches_nested(q: &Graph, g: &Graph) -> Result<(), String> {
    let qs = GraphStats::build(q);
    let gs = GraphStats::build(g);
    let ctx = FilterContext::new(q, g, &qs, &gs);
    for refined in [false, true] {
        let mut builder = topdown::top_down(&ctx, 0);
        if refined {
            refine::bottom_up(&ctx, &mut builder);
        }
        builder.prune_unreachable();
        let (cands, row_offsets, row_data) = builder.freeze_nested(q);
        let cpi = builder.freeze(q, g);

        for (u, nested) in cands.iter().enumerate() {
            let flat = cpi.candidates(u as VertexId);
            if flat != nested.as_slice() {
                return Err(format!(
                    "candidates diverge at u={u} (refined={refined}): \
                     flat={flat:?} nested={nested:?}"
                ));
            }
        }
        for u in 0..q.num_vertices() as VertexId {
            let Some(parent) = cpi.parent(u) else {
                continue;
            };
            let num_parent = cands[parent as usize].len();
            let offsets = &row_offsets[u as usize];
            if offsets.len() != num_parent + 1 {
                return Err(format!(
                    "nested offsets for u={u} have {} entries, expected {}",
                    offsets.len(),
                    num_parent + 1
                ));
            }
            for pos in 0..num_parent {
                let flat = cpi.row(u, pos);
                let nested =
                    &row_data[u as usize][offsets[pos] as usize..offsets[pos + 1] as usize];
                if flat != nested {
                    return Err(format!(
                        "row diverges at u={u} parent_pos={pos} (refined={refined}): \
                         flat={flat:?} nested={nested:?}"
                    ));
                }
            }
        }
    }
    Ok(())
}
