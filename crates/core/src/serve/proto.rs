//! Length-prefixed JSON wire protocol for the serving engine.
//!
//! # Framing
//!
//! Every message — both directions — is one **frame**: a 4-byte
//! big-endian payload length followed by that many bytes of UTF-8 JSON.
//! Frames larger than [`MAX_FRAME`] are rejected, so a corrupt or hostile
//! length prefix cannot make the server allocate unboundedly.
//!
//! # Requests
//!
//! Each request is a JSON object with an `"op"` member:
//!
//! | op            | fields                                                        |
//! |---------------|---------------------------------------------------------------|
//! | `submit`      | `graph?`, `query{labels,edges}`, `limit?`, `deadline_ms?`, `order?`, `pruning?`, `label_pair?`, `count_only?` |
//! | `cancel`      | `id`                                                          |
//! | `apply-delta` | `graph?`, `insert?: [[u,v],…]`, `delete?: [[u,v],…]`          |
//! | `stats`       | —                                                             |
//! | `shutdown`    | —                                                             |
//!
//! `graph` defaults to `"default"`. `order` is `"static"`/`"adaptive"`,
//! `pruning` is `"plain"`/`"failing-set"` — the same vocabulary as the
//! CLI's `--order`/`--pruning` flags.
//!
//! # Responses
//!
//! A `submit` answers `{"ok":true,"id":N}` and then streams
//! `{"id":N,"batch":[[…],…]}` frames followed by exactly one terminal
//! frame: `{"id":N,"done":{…}}` or `{"id":N,"error":"…"}`. The `done`
//! object carries `outcome` (see `MatchOutcome::as_tag`), `embeddings`,
//! `truncated`, `checksum` (hex string — JSON numbers cannot carry 64-bit
//! integers exactly), `search_nodes` and `elapsed_ms`. Other ops answer a
//! single `{"ok":…}` frame. Failures are
//! `{"ok":false,"error":"…","retry":B}` where `retry:true` marks
//! transient conditions (queue full).

use std::io::{self, Read, Write};
use std::time::Duration;

use cfl_graph::{graph_from_edges, GraphDelta, VertexId};
use cfl_trace::ServeTrace;

use super::engine::{QueryDone, QuerySpec};
use super::json::{escape, Json};
use crate::config::{MatchConfig, OrderingKind, PruningKind};

/// Maximum frame payload accepted or produced (16 MiB).
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME",
        ));
    }
    let len = bytes.len() as u32;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` on a clean end-of-stream *between* frames;
/// EOF inside a frame is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        let n = r.read(&mut len[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "eof inside frame header",
            ));
        }
        got += n;
    }
    let n = u32::from_be_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME",
        ));
    }
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not utf-8"))
}

/// A decoded client request.
#[derive(Debug)]
pub enum Request {
    /// Run one query.
    Submit(QuerySpec),
    /// Cancel a live query by id.
    Cancel {
        /// Engine-assigned query id.
        id: u64,
    },
    /// Apply an edge delta to a named graph.
    ApplyDelta {
        /// Target graph name.
        graph: String,
        /// The batch of edits.
        delta: GraphDelta,
    },
    /// Snapshot the serving counters.
    Stats,
    /// Stop accepting connections and exit the server loop.
    Shutdown,
}

fn edge_pairs(v: &Json, what: &str) -> Result<Vec<(VertexId, VertexId)>, String> {
    let arr = v
        .as_arr()
        .ok_or_else(|| format!("{what} must be an array"))?;
    let mut out = Vec::with_capacity(arr.len());
    for pair in arr {
        let pair = pair
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("{what} entries must be [u, v] pairs"))?;
        let u = pair[0]
            .as_u64()
            .and_then(|x| u32::try_from(x).ok())
            .ok_or_else(|| format!("{what} endpoints must be u32"))?;
        let v = pair[1]
            .as_u64()
            .and_then(|x| u32::try_from(x).ok())
            .ok_or_else(|| format!("{what} endpoints must be u32"))?;
        out.push((u, v));
    }
    Ok(out)
}

fn parse_submit(v: &Json) -> Result<QuerySpec, String> {
    let graph = v
        .get("graph")
        .map(|g| {
            g.as_str()
                .map(str::to_string)
                .ok_or("graph must be a string")
        })
        .transpose()?
        .unwrap_or_else(|| "default".to_string());
    let q = v.get("query").ok_or("submit requires a query object")?;
    let labels: Vec<u32> = q
        .get("labels")
        .and_then(Json::as_arr)
        .ok_or("query.labels must be an array")?
        .iter()
        .map(|l| {
            l.as_u64()
                .and_then(|x| u32::try_from(x).ok())
                .ok_or("query.labels entries must be u32")
        })
        .collect::<Result<_, _>>()?;
    let edges = edge_pairs(
        q.get("edges").unwrap_or(&Json::Arr(Vec::new())),
        "query.edges",
    )?;
    let query = graph_from_edges(&labels, &edges).map_err(|e| format!("invalid query: {e}"))?;

    let mut config = MatchConfig::exhaustive();
    match v.get("order").map(|o| o.as_str()) {
        None | Some(Some("static")) => {}
        Some(Some("adaptive")) => config = config.with_ordering(OrderingKind::Adaptive),
        Some(other) => {
            return Err(format!(
                "unknown order {other:?} (expected \"static\" or \"adaptive\")"
            ))
        }
    }
    match v.get("pruning").map(|o| o.as_str()) {
        None | Some(Some("plain")) => {}
        Some(Some("failing-set")) => config = config.with_pruning(PruningKind::FailingSet),
        Some(other) => {
            return Err(format!(
                "unknown pruning {other:?} (expected \"plain\" or \"failing-set\")"
            ))
        }
    }
    if v.get("label_pair").and_then(Json::as_bool) == Some(true) {
        let mut filters = config.filters;
        filters.use_label_pair = true;
        config = config.with_filters(filters);
    }

    let limit = match v.get("limit") {
        None | Some(Json::Null) => None,
        Some(j) => Some(j.as_u64().ok_or("limit must be a non-negative integer")?),
    };
    let deadline = match v.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(j) => Some(Duration::from_millis(
            j.as_u64()
                .ok_or("deadline_ms must be a non-negative integer")?,
        )),
    };
    let count_only = v.get("count_only").and_then(Json::as_bool).unwrap_or(false);
    Ok(QuerySpec {
        graph,
        query,
        config,
        limit,
        deadline,
        count_only,
    })
}

/// Decodes one request frame.
pub fn parse_request(text: &str) -> Result<Request, String> {
    let v = Json::parse(text).map_err(|e| e.to_string())?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("request requires a string \"op\" member")?;
    match op {
        "submit" => parse_submit(&v).map(Request::Submit),
        "cancel" => {
            let id = v
                .get("id")
                .and_then(Json::as_u64)
                .ok_or("cancel requires a numeric id")?;
            Ok(Request::Cancel { id })
        }
        "apply-delta" => {
            let graph = v
                .get("graph")
                .and_then(Json::as_str)
                .unwrap_or("default")
                .to_string();
            let mut delta = GraphDelta::new();
            if let Some(ins) = v.get("insert") {
                for (u, w) in edge_pairs(ins, "insert")? {
                    delta.insert(u, w);
                }
            }
            if let Some(del) = v.get("delete") {
                for (u, w) in edge_pairs(del, "delete")? {
                    delta.delete(u, w);
                }
            }
            if delta.is_empty() {
                return Err("apply-delta requires insert and/or delete edges".to_string());
            }
            Ok(Request::ApplyDelta { graph, delta })
        }
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op {other:?}")),
    }
}

// ---------------------------------------------------------------------
// Response encoders (hand-written JSON, like every producer in this
// workspace).
// ---------------------------------------------------------------------

/// `submit` accepted.
#[must_use]
pub fn encode_submitted(id: u64) -> String {
    format!("{{\"ok\": true, \"id\": {id}}}")
}

/// A batch of embeddings for query `id`.
#[must_use]
pub fn encode_batch(id: u64, batch: &[Vec<VertexId>]) -> String {
    let mut out = format!("{{\"id\": {id}, \"batch\": [");
    for (i, emb) in batch.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('[');
        for (j, v) in emb.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&v.to_string());
        }
        out.push(']');
    }
    out.push_str("]}");
    out
}

/// Terminal success frame for query `id`.
#[must_use]
pub fn encode_done(id: u64, done: &QueryDone) -> String {
    format!(
        "{{\"id\": {id}, \"done\": {{\"outcome\": \"{}\", \"embeddings\": {}, \
         \"truncated\": {}, \"checksum\": \"0x{:016x}\", \"search_nodes\": {}, \
         \"elapsed_ms\": {:.3}}}}}",
        done.outcome.as_tag(),
        done.embeddings,
        done.truncated,
        done.checksum,
        done.search_nodes,
        done.elapsed.as_secs_f64() * 1e3,
    )
}

/// Terminal failure frame for query `id`.
#[must_use]
pub fn encode_query_error(id: u64, msg: &str) -> String {
    format!("{{\"id\": {id}, \"error\": \"{}\"}}", escape(msg))
}

/// Request-level failure frame; `retry` marks transient conditions.
#[must_use]
pub fn encode_error(msg: &str, retry: bool) -> String {
    format!(
        "{{\"ok\": false, \"error\": \"{}\", \"retry\": {retry}}}",
        escape(msg)
    )
}

/// `cancel` response; `cancelled` is whether the id was live.
#[must_use]
pub fn encode_cancelled(cancelled: bool) -> String {
    format!("{{\"ok\": true, \"cancelled\": {cancelled}}}")
}

/// `apply-delta` success response.
#[must_use]
pub fn encode_delta_applied(epoch: u64, plans_refreshed: u64) -> String {
    format!("{{\"ok\": true, \"epoch\": {epoch}, \"plans_refreshed\": {plans_refreshed}}}")
}

/// `stats` response wrapping the counter snapshot.
#[must_use]
pub fn encode_stats(trace: &ServeTrace) -> String {
    format!("{{\"ok\": true, \"stats\": {}}}", trace.to_json())
}

/// `shutdown` acknowledgement.
#[must_use]
pub fn encode_ok() -> String {
    "{\"ok\": true}".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::MatchOutcome;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"op\": \"stats\"}").unwrap();
        write_frame(&mut buf, "second").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some("{\"op\": \"stats\"}")
        );
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("second"));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean eof");
    }

    #[test]
    fn truncated_frames_are_errors() {
        // EOF inside the header.
        let mut r = io::Cursor::new(vec![0u8, 0]);
        assert!(read_frame(&mut r).is_err());
        // EOF inside the payload.
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut header = Vec::from(((MAX_FRAME + 1) as u32).to_be_bytes());
        header.extend_from_slice(b"x");
        let mut r = io::Cursor::new(header);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn parses_submit_with_strategies() {
        let req = parse_request(
            r#"{"op":"submit","graph":"g","query":{"labels":[0,1,2],"edges":[[0,1],[1,2],[2,0]]},
                "limit":10,"deadline_ms":250,"order":"adaptive","pruning":"failing-set",
                "label_pair":true,"count_only":false}"#,
        )
        .unwrap();
        let Request::Submit(spec) = req else {
            panic!("expected submit")
        };
        assert_eq!(spec.graph, "g");
        assert_eq!(spec.query.num_vertices(), 3);
        assert_eq!(spec.limit, Some(10));
        assert_eq!(spec.deadline, Some(Duration::from_millis(250)));
        assert!(!spec.count_only);
        assert_eq!(spec.config.ordering, OrderingKind::Adaptive);
        assert_eq!(spec.config.pruning, PruningKind::FailingSet);
        assert!(spec.config.filters.use_label_pair);
    }

    #[test]
    fn submit_defaults_are_conservative() {
        let req =
            parse_request(r#"{"op":"submit","query":{"labels":[0,0],"edges":[[0,1]]}}"#).unwrap();
        let Request::Submit(spec) = req else {
            panic!("expected submit")
        };
        assert_eq!(spec.graph, "default");
        assert_eq!(spec.limit, None);
        assert_eq!(spec.deadline, None);
        assert_eq!(spec.config.ordering, OrderingKind::StaticPath);
        assert_eq!(spec.config.pruning, PruningKind::Plain);
    }

    #[test]
    fn parses_cancel_delta_stats_shutdown() {
        assert!(matches!(
            parse_request(r#"{"op":"cancel","id":7}"#).unwrap(),
            Request::Cancel { id: 7 }
        ));
        let Request::ApplyDelta { graph, delta } =
            parse_request(r#"{"op":"apply-delta","insert":[[0,3]],"delete":[[1,2]]}"#).unwrap()
        else {
            panic!("expected apply-delta")
        };
        assert_eq!(graph, "default");
        assert_eq!(delta.inserts(), &[(0, 3)]);
        assert_eq!(delta.deletes(), &[(1, 2)]);
        assert!(matches!(
            parse_request(r#"{"op":"stats"}"#).unwrap(),
            Request::Stats
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        ));
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "not json",
            r#"{"op":"nope"}"#,
            r#"{"no_op":1}"#,
            r#"{"op":"cancel"}"#,
            r#"{"op":"submit"}"#,
            r#"{"op":"submit","query":{"labels":[0],"edges":[[0,1,2]]}}"#,
            r#"{"op":"submit","query":{"labels":[0,1],"edges":[[0,1]]},"order":"fancy"}"#,
            r#"{"op":"apply-delta"}"#,
        ] {
            assert!(parse_request(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn encoders_emit_parseable_json() {
        let done = QueryDone {
            outcome: MatchOutcome::LimitReached,
            embeddings: 10,
            truncated: true,
            checksum: 0xdead_beef_0000_0001,
            search_nodes: 123,
            elapsed: Duration::from_micros(1500),
        };
        for payload in [
            encode_submitted(3),
            encode_batch(3, &[vec![0, 1], vec![2, 3]]),
            encode_done(3, &done),
            encode_query_error(3, "bad \"query\""),
            encode_error("queue full", true),
            encode_cancelled(true),
            encode_delta_applied(2, 5),
            encode_stats(&ServeTrace::default()),
            encode_ok(),
        ] {
            let v = Json::parse(&payload).unwrap_or_else(|e| panic!("{payload}: {e}"));
            assert!(matches!(v, Json::Obj(_)));
        }
        let v = Json::parse(&encode_done(3, &done)).unwrap();
        assert_eq!(
            v.get("done")
                .and_then(|d| d.get("checksum"))
                .and_then(Json::as_str),
            Some("0xdeadbeef00000001")
        );
        let v = Json::parse(&encode_batch(3, &[vec![0, 1]])).unwrap();
        assert_eq!(
            v.get("batch").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
    }
}
