//! A small blocking client for the serving protocol, used by the CLI,
//! the load generator, and the integration tests. One [`Client`] wraps
//! one TCP connection and mirrors the protocol's synchronous,
//! one-request-at-a-time shape.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use std::fmt::Write as _;

use cfl_graph::{Graph, VertexId};

use super::json::{escape, Json};
use super::proto::{read_frame, write_frame};
use crate::result::EmbeddingChecksum;

/// Serializes a `submit` request for `query` against the named graph.
/// `limit`/`deadline_ms` override the engine defaults; `count_only`
/// suppresses batch streaming. Strategy fields are left at the protocol
/// defaults (static ordering, plain pruning) — callers needing them can
/// build the payload by hand.
#[must_use]
pub fn submit_payload(
    graph: &str,
    query: &Graph,
    limit: Option<u64>,
    deadline_ms: Option<u64>,
    count_only: bool,
) -> String {
    let mut s = format!("{{\"op\":\"submit\",\"graph\":\"{}\",", escape(graph));
    s.push_str("\"query\":{\"labels\":[");
    for (i, &l) in query.labels().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{l}");
    }
    s.push_str("],\"edges\":[");
    for (i, (u, v)) in query.edges().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "[{u},{v}]");
    }
    s.push_str("]}");
    if let Some(n) = limit {
        let _ = write!(s, ",\"limit\":{n}");
    }
    if let Some(ms) = deadline_ms {
        let _ = write!(s, ",\"deadline_ms\":{ms}");
    }
    if count_only {
        s.push_str(",\"count_only\":true");
    }
    s.push('}');
    s
}

/// Client-side summary of one streamed query.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Engine-assigned query id.
    pub id: u64,
    /// Outcome tag from the terminal frame (`"complete"`, `"limit"`,
    /// `"deadline"`, `"cancelled"`).
    pub outcome: String,
    /// Embedding count reported by the server.
    pub embeddings: u64,
    /// Whether the run stopped before exhausting the search.
    pub truncated: bool,
    /// Server-computed checksum (hex string, e.g. `"0x00ab…"`).
    pub checksum: String,
    /// Checksum recomputed client-side over the received batches; equals
    /// `checksum` whenever the full stream arrived (it stays at the
    /// empty-digest value for `count_only` queries, which stream nothing).
    pub received_checksum: String,
    /// Embeddings actually received in batches (≤ `embeddings`; 0 for
    /// `count_only` queries).
    pub received: u64,
    /// Search-tree nodes explored, from the terminal frame.
    pub search_nodes: u64,
    /// Server-side execution time in milliseconds.
    pub elapsed_ms: f64,
}

/// One connection to a serving endpoint.
pub struct Client {
    stream: TcpStream,
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Sets a read timeout on the underlying socket (useful in tests so a
    /// wedged server fails fast instead of hanging the suite).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one raw JSON payload as a frame.
    pub fn send(&mut self, payload: &str) -> io::Result<()> {
        write_frame(&mut self.stream, payload)
    }

    /// Receives one frame and parses it; `None` on clean server close.
    pub fn recv(&mut self) -> io::Result<Option<Json>> {
        match read_frame(&mut self.stream)? {
            None => Ok(None),
            Some(text) => Json::parse(&text).map(Some).map_err(|e| bad(e.to_string())),
        }
    }

    /// One non-streaming round trip (cancel / apply-delta / stats /
    /// shutdown): sends `payload`, returns the single response frame.
    pub fn request(&mut self, payload: &str) -> io::Result<Json> {
        self.send(payload)?;
        self.recv()?.ok_or_else(|| bad("server closed connection"))
    }

    /// Runs one `submit` to its terminal frame, invoking `on_batch` for
    /// every received embedding batch. Returns `Ok(Err(msg))` when the
    /// server rejected or failed the query.
    pub fn run_query_with(
        &mut self,
        payload: &str,
        mut on_batch: impl FnMut(&[Vec<VertexId>]),
    ) -> io::Result<Result<QueryResult, String>> {
        let ack = self.request(payload)?;
        if ack.get("ok").and_then(Json::as_bool) != Some(true) {
            let msg = ack
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("malformed rejection")
                .to_string();
            return Ok(Err(msg));
        }
        let id = ack
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("submit ack without id"))?;
        let mut checksum = EmbeddingChecksum::new();
        let mut received: u64 = 0;
        loop {
            let frame = self
                .recv()?
                .ok_or_else(|| bad("server closed mid-stream"))?;
            if let Some(batch) = frame.get("batch") {
                let rows = batch.as_arr().ok_or_else(|| bad("batch is not an array"))?;
                let mut decoded = Vec::with_capacity(rows.len());
                for row in rows {
                    let emb: Vec<VertexId> = row
                        .as_arr()
                        .ok_or_else(|| bad("embedding is not an array"))?
                        .iter()
                        .map(|v| {
                            v.as_u64()
                                .and_then(|x| u32::try_from(x).ok())
                                .ok_or_else(|| bad("vertex id is not a u32"))
                        })
                        .collect::<io::Result<_>>()?;
                    checksum.update(&emb);
                    decoded.push(emb);
                }
                received += decoded.len() as u64;
                on_batch(&decoded);
                continue;
            }
            if let Some(msg) = frame.get("error").and_then(Json::as_str) {
                return Ok(Err(msg.to_string()));
            }
            let Some(done) = frame.get("done") else {
                return Err(bad("unexpected frame in query stream"));
            };
            let field_u64 = |k: &str| {
                done.get(k)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad(format!("done frame missing {k}")))
            };
            return Ok(Ok(QueryResult {
                id,
                outcome: done
                    .get("outcome")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("done frame missing outcome"))?
                    .to_string(),
                embeddings: field_u64("embeddings")?,
                truncated: done
                    .get("truncated")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| bad("done frame missing truncated"))?,
                checksum: done
                    .get("checksum")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("done frame missing checksum"))?
                    .to_string(),
                received_checksum: format!("0x{:016x}", checksum.digest()),
                received,
                search_nodes: field_u64("search_nodes")?,
                elapsed_ms: match done.get("elapsed_ms") {
                    Some(Json::Num(n)) => *n,
                    _ => return Err(bad("done frame missing elapsed_ms")),
                },
            }));
        }
    }

    /// [`run_query_with`](Self::run_query_with), discarding batch
    /// contents (the checksums still cover them).
    pub fn run_query(&mut self, payload: &str) -> io::Result<Result<QueryResult, String>> {
        self.run_query_with(payload, |_| {})
    }
}
