//! The serving engine: a long-lived executor that owns data graphs and
//! runs many queries concurrently.
//!
//! # Architecture
//!
//! An [`Engine`] owns a registry of named graphs (each an
//! `Arc<Graph>` plus an optional shared [`PlanCache`]) and a fixed pool
//! of executor workers fed by a **bounded admission queue**:
//!
//! * [`Engine::submit`] is non-blocking: when the queue is full the query
//!   is rejected immediately ([`SubmitError::QueueFull`]) so callers get
//!   backpressure instead of unbounded latency;
//! * each admitted query runs **single-threaded** on one worker, so its
//!   embedding sequence — and therefore its [`EmbeddingChecksum`] — is
//!   byte-identical to a serial one-shot run of the same query;
//! * results stream back in batches over a small bounded channel; a slow
//!   client throttles only its own worker (the send blocks), and a
//!   *vanished* client (receiver dropped) aborts the query within one
//!   enumeration quantum;
//! * [`Engine::apply_delta`] swaps the named graph's `Arc` for the
//!   post-delta successor. In-flight queries keep the `Arc` they captured
//!   at submission — **snapshot isolation**: a query answers against the
//!   graph version that was current when it was admitted;
//! * every state transition updates a [`ServeTrace`] under one mutex, so
//!   [`Engine::stats`] snapshots always satisfy the accounting identities
//!   checked by `cfl-verify`'s `check_serve_trace`.
//!
//! # Counter semantics
//!
//! `submitted = admitted + rejected` at every instant. A submission
//! naming an unknown graph is **admitted and immediately failed** (it
//! enters the books as a query that errored before enumeration, matching
//! the `failed` counter's definition) — the caller still gets
//! [`SubmitError::UnknownGraph`] synchronously. A submission bounced by a
//! full queue or a shut-down engine counts as `rejected`.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use cfl_graph::{DeltaError, Graph, GraphDelta, VertexId};
use cfl_trace::ServeTrace;
use crossbeam::channel::{self, Receiver, Sender, TrySendError};

use crate::cache::PlanCache;
use crate::config::{Budget, CancelToken, MatchConfig};
use crate::result::{EmbeddingChecksum, MatchOutcome};
use crate::session::DataGraph;
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{thread, Arc, Mutex, MutexGuard, PoisonError};

/// Sizing and default-budget knobs for an [`Engine`].
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Executor workers (concurrent queries). Each worker runs one query
    /// at a time, single-threaded.
    pub workers: usize,
    /// Admission queue capacity; submissions beyond `workers + queue_depth`
    /// in flight are rejected with [`SubmitError::QueueFull`].
    pub queue_depth: usize,
    /// Embeddings per streamed batch.
    pub batch_size: usize,
    /// Embedding cap applied to queries that do not set their own.
    pub default_limit: Option<u64>,
    /// Execution deadline applied to queries that do not set their own.
    /// The clock starts when a worker picks the query up (it measures
    /// execution, not queue wait).
    pub default_deadline: Option<Duration>,
    /// Attach a shared [`PlanCache`] to each graph, so isomorphic repeat
    /// queries skip CPI construction and deltas restamp surviving plans.
    pub plan_cache: bool,
    /// Worker threads for *CPI construction* of each query (enumeration
    /// itself always runs single-threaded for determinism; the CPI a
    /// parallel build produces is identical to a serial one).
    pub build_threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 2,
            queue_depth: 64,
            batch_size: 64,
            default_limit: None,
            default_deadline: None,
            plan_cache: true,
            build_threads: 1,
        }
    }
}

/// One query as submitted to the engine.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// Name of the target data graph (see [`Engine::add_graph`]).
    pub graph: String,
    /// The query graph.
    pub query: Graph,
    /// Strategy configuration (ordering, pruning, filters). Its budget is
    /// **replaced** by the engine: limit/deadline below merged with the
    /// engine defaults, plus the engine's cancellation token.
    pub config: MatchConfig,
    /// Per-query embedding cap; `None` falls back to the engine default.
    pub limit: Option<u64>,
    /// Per-query execution deadline; `None` falls back to the engine
    /// default.
    pub deadline: Option<Duration>,
    /// Count embeddings without materializing or streaming them (the
    /// final [`QueryDone`] still carries the count; the checksum covers
    /// nothing and stays at the FNV offset basis).
    pub count_only: bool,
}

impl QuerySpec {
    /// A spec with default strategy, no per-query budget overrides, and
    /// streaming enabled.
    pub fn new(graph: impl Into<String>, query: Graph) -> Self {
        QuerySpec {
            graph: graph.into(),
            query,
            config: MatchConfig::exhaustive(),
            limit: None,
            deadline: None,
            count_only: false,
        }
    }
}

/// Why a submission was not admitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at capacity; retry later.
    QueueFull,
    /// The engine is shutting down; do not retry.
    ShuttingDown,
    /// No graph with this name is registered.
    UnknownGraph(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "admission queue full"),
            SubmitError::ShuttingDown => write!(f, "engine shutting down"),
            SubmitError::UnknownGraph(name) => write!(f, "unknown graph {name:?}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a delta application failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeDeltaError {
    /// No graph with this name is registered.
    UnknownGraph(String),
    /// The delta itself was invalid against the current graph version.
    Delta(DeltaError),
}

impl std::fmt::Display for ServeDeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeDeltaError::UnknownGraph(name) => write!(f, "unknown graph {name:?}"),
            ServeDeltaError::Delta(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeDeltaError {}

/// Outcome of a successful [`Engine::apply_delta`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaApplied {
    /// Epoch of the new graph version.
    pub epoch: u64,
    /// Cached plans the plan cache restamped to the new epoch.
    pub plans_refreshed: u64,
}

/// Terminal summary of one served query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryDone {
    /// Stable outcome tag (`"complete"`, `"limit"`, `"deadline"`,
    /// `"cancelled"`; see [`MatchOutcome::as_tag`]).
    pub outcome: MatchOutcome,
    /// Embeddings enumerated (streamed or counted).
    pub embeddings: u64,
    /// `true` iff the run stopped before exhausting the search.
    pub truncated: bool,
    /// [`EmbeddingChecksum`] digest over the emitted sequence.
    pub checksum: u64,
    /// Search-tree nodes explored.
    pub search_nodes: u64,
    /// Execution time on the worker (excludes queue wait).
    pub elapsed: Duration,
}

/// One event on a query's result stream: zero or more batches, then
/// exactly one terminal event ([`Done`](QueryEvent::Done) or
/// [`Failed`](QueryEvent::Failed)).
#[derive(Clone, Debug, PartialEq)]
pub enum QueryEvent {
    /// A batch of embeddings, in enumeration order.
    Batch(Vec<Vec<VertexId>>),
    /// The query finished; no further events follow.
    Done(QueryDone),
    /// The query errored before enumeration (e.g. a disconnected query
    /// graph); no further events follow.
    Failed(String),
}

/// Client half of one admitted query: its id, its cancellation token, and
/// the event stream.
///
/// Dropping the handle drops the stream's receiver; the worker notices on
/// its next batch send and aborts the query (classified as `cancelled`).
pub struct QueryHandle {
    id: u64,
    cancel: CancelToken,
    events: Receiver<QueryEvent>,
}

impl std::fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryHandle").field("id", &self.id).finish()
    }
}

impl QueryHandle {
    /// The engine-assigned query id (also usable with [`Engine::cancel`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Latches this query's cancellation token; the search stops within
    /// one enumeration quantum.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Blocks for the next event; `None` once the terminal event has been
    /// consumed (the worker dropped its sender).
    pub fn recv(&self) -> Option<QueryEvent> {
        self.events.recv().ok()
    }

    /// Drains the stream to its terminal event, discarding batches.
    /// Returns `None` only if the engine died mid-query.
    pub fn wait(&self) -> Option<QueryEvent> {
        loop {
            match self.recv()? {
                QueryEvent::Batch(_) => {}
                terminal => return Some(terminal),
            }
        }
    }
}

/// One named graph version: the graph and its (shared) plan cache. A
/// delta replaces the `Arc<GraphState>` as a unit; the cache `Arc` is
/// carried over so restamped plans survive.
struct GraphState {
    graph: Arc<Graph>,
    cache: Option<Arc<PlanCache>>,
}

/// An admitted query traveling through the queue to a worker.
struct Job {
    id: u64,
    state: Arc<GraphState>,
    query: Graph,
    config: MatchConfig,
    count_only: bool,
    batch_size: usize,
    events: Sender<QueryEvent>,
    cancel: CancelToken,
}

struct Shared {
    graphs: Mutex<HashMap<String, Arc<GraphState>>>,
    registry: Mutex<HashMap<u64, CancelToken>>,
    counters: Mutex<ServeTrace>,
    next_id: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A long-lived query-serving engine. See the [serve module
/// docs](crate::serve) for the architecture and counter semantics.
pub struct Engine {
    shared: Arc<Shared>,
    config: EngineConfig,
    /// `None` only during shutdown: dropping the sender disconnects the
    /// queue, which ends every worker's receive loop.
    queue: Option<Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Engine {
    /// Starts `config.workers` executor threads over a fresh admission
    /// queue. Graphs are registered afterwards with
    /// [`add_graph`](Self::add_graph).
    pub fn new(config: EngineConfig) -> Self {
        let workers = config.workers.max(1);
        let (tx, rx) = channel::bounded::<Job>(config.queue_depth);
        let shared = Arc::new(Shared {
            graphs: Mutex::new(HashMap::new()),
            registry: Mutex::new(HashMap::new()),
            counters: Mutex::new(ServeTrace::default()),
            next_id: AtomicU64::new(1),
        });
        // The shim's Receiver is not Sync, so workers take turns claiming
        // jobs through a mutex; the claim is O(1) and the guard is dropped
        // before the query runs.
        let rx = Arc::new(Mutex::new(rx));
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            let spawned = thread::Builder::new()
                .name(format!("cfl-serve-{i}"))
                .spawn(move || loop {
                    // A receive error means the queue disconnected:
                    // shutdown.
                    let Ok(job) = lock(&rx).recv() else { return };
                    run_job(&shared, job);
                });
            match spawned {
                Ok(h) => handles.push(h),
                // Thread exhaustion: run degraded with the workers that
                // did start (at least the submit path still works and
                // jobs queue up).
                Err(_) => break,
            }
        }
        Engine {
            shared,
            config,
            queue: Some(tx),
            workers: handles,
        }
    }

    /// Registers (or replaces) a named graph. Indexing statistics are
    /// built once here, so per-query [`DataGraph`] construction on the
    /// workers is cheap.
    pub fn add_graph(&self, name: impl Into<String>, graph: Graph) {
        let graph = Arc::new(graph);
        // Warm the memoized statistics tables before the graph is
        // visible to workers.
        drop(DataGraph::new(&graph));
        let cache = self
            .config
            .plan_cache
            .then(|| Arc::new(PlanCache::with_default_capacity()));
        let state = Arc::new(GraphState { graph, cache });
        lock(&self.shared.graphs).insert(name.into(), state);
    }

    /// Names of the registered graphs, sorted.
    pub fn graph_names(&self) -> Vec<String> {
        let mut names: Vec<String> = lock(&self.shared.graphs).keys().cloned().collect();
        names.sort();
        names
    }

    /// The sizing configuration the engine was started with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Offers one query for admission. Non-blocking: a full queue rejects
    /// immediately. On success the query is queued and the returned
    /// [`QueryHandle`] streams its events.
    pub fn submit(&self, spec: QuerySpec) -> Result<QueryHandle, SubmitError> {
        // Counter updates happen in one lock acquisition per terminal
        // path — `submitted` together with its classification — so the
        // admission identity `submitted = admitted + rejected` holds at
        // every [`stats`](Self::stats) snapshot, not just at quiescence.
        let Some(state) = lock(&self.shared.graphs).get(&spec.graph).cloned() else {
            // Unknown graph: admitted and immediately failed (see the
            // module docs), so the `failed` counter owns this case.
            let mut t = lock(&self.shared.counters);
            t.submitted += 1;
            t.admitted += 1;
            t.failed += 1;
            return Err(SubmitError::UnknownGraph(spec.graph));
        };
        let id = self.shared.next_id.fetch_add(1, Ordering::SeqCst);
        let cancel = CancelToken::new();
        let budget = Budget {
            max_embeddings: spec.limit.or(self.config.default_limit),
            time_limit: spec.deadline.or(self.config.default_deadline),
            cancel: Some(cancel.clone()),
        };
        let config = spec
            .config
            .with_budget(budget)
            .with_build_threads(self.config.build_threads.max(1));
        let (tx, rx) = channel::bounded::<QueryEvent>(8);
        let job = Job {
            id,
            state,
            query: spec.query,
            config,
            count_only: spec.count_only,
            batch_size: self.config.batch_size.max(1),
            events: tx,
            cancel: cancel.clone(),
        };
        let Some(queue) = &self.queue else {
            let mut t = lock(&self.shared.counters);
            t.submitted += 1;
            t.rejected += 1;
            return Err(SubmitError::ShuttingDown);
        };
        // Register the token before the job becomes claimable so a
        // cancel-by-id arriving right after submit returns always finds it.
        lock(&self.shared.registry).insert(id, cancel.clone());
        // The counters lock is held *across* the non-blocking enqueue: a
        // worker claiming the job decrements `queued` under this same
        // lock, so it cannot observe (or underflow past) the increment
        // below before it lands.
        let mut t = lock(&self.shared.counters);
        match queue.try_send(job) {
            Ok(()) => {
                t.submitted += 1;
                t.admitted += 1;
                t.queued += 1;
                Ok(QueryHandle {
                    id,
                    cancel,
                    events: rx,
                })
            }
            Err(e) => {
                t.submitted += 1;
                t.rejected += 1;
                drop(t);
                lock(&self.shared.registry).remove(&id);
                Err(match e {
                    TrySendError::Full(_) => SubmitError::QueueFull,
                    TrySendError::Disconnected(_) => SubmitError::ShuttingDown,
                })
            }
        }
    }

    /// Latches the cancellation token of query `id`. Returns whether the
    /// query was live (queued or running); cancelling a finished or
    /// unknown id is a no-op returning `false`.
    pub fn cancel(&self, id: u64) -> bool {
        match lock(&self.shared.registry).get(&id) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// Applies `delta` to the named graph, swapping in the successor
    /// version and restamping surviving cached plans. In-flight queries
    /// keep the version they captured at admission (snapshot isolation);
    /// queries admitted after this call see the successor.
    pub fn apply_delta(
        &self,
        name: &str,
        delta: &GraphDelta,
    ) -> Result<DeltaApplied, ServeDeltaError> {
        // The registry lock is held across the application so concurrent
        // deltas to one graph serialize instead of both applying to the
        // same predecessor and losing one batch of edits.
        let mut graphs = lock(&self.shared.graphs);
        let Some(state) = graphs.get(name).cloned() else {
            return Err(ServeDeltaError::UnknownGraph(name.to_string()));
        };
        let applied = state
            .graph
            .apply_delta(delta)
            .map_err(ServeDeltaError::Delta)?;
        let refreshed = state
            .cache
            .as_ref()
            .map_or(0, |cache| cache.refresh(&state.graph, &applied));
        let epoch = applied.graph.epoch();
        let next = Arc::new(applied.graph);
        drop(DataGraph::new(&next)); // warm stats for the successor
        graphs.insert(
            name.to_string(),
            Arc::new(GraphState {
                graph: next,
                cache: state.cache.clone(),
            }),
        );
        drop(graphs);
        let mut t = lock(&self.shared.counters);
        t.deltas_applied += 1;
        t.plans_refreshed += refreshed as u64;
        Ok(DeltaApplied {
            epoch,
            plans_refreshed: refreshed as u64,
        })
    }

    /// Snapshot of the serving counters. Taken under the transition lock,
    /// so the accounting identities hold exactly at every snapshot.
    pub fn stats(&self) -> ServeTrace {
        lock(&self.shared.counters).clone()
    }

    /// Stops admission, drains the queue, and joins the workers. Queued
    /// queries still run to completion; new submissions are rejected.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.queue = None; // disconnects the admission queue
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Executes one admitted query on the calling worker thread.
fn run_job(shared: &Shared, job: Job) {
    {
        let mut t = lock(&shared.counters);
        t.queued -= 1;
        t.active += 1;
    }
    let session = match &job.state.cache {
        Some(cache) => DataGraph::new(&job.state.graph).with_plan_cache(Arc::clone(cache)),
        None => DataGraph::new(&job.state.graph),
    };
    let start = Instant::now();
    let mut checksum = EmbeddingChecksum::new();
    let mut batch: Vec<Vec<VertexId>> = Vec::new();
    let mut abandoned = false;
    let mut batches_sent: u64 = 0;
    let mut streamed: u64 = 0;
    let result = if job.count_only {
        session.count_embeddings(&job.query, &job.config)
    } else {
        session.find_embeddings(&job.query, &job.config, |mapping| {
            checksum.update(mapping);
            batch.push(mapping.to_vec());
            if batch.len() < job.batch_size {
                return true;
            }
            let full = std::mem::take(&mut batch);
            let n = full.len() as u64;
            match job.events.send(QueryEvent::Batch(full)) {
                Ok(()) => {
                    batches_sent += 1;
                    streamed += n;
                    true
                }
                Err(_) => {
                    // Client vanished: stop now and make sure the
                    // enumerator agrees if it polls before unwinding.
                    abandoned = true;
                    job.cancel.cancel();
                    false
                }
            }
        })
    };
    let elapsed = start.elapsed();
    match result {
        Ok(report) => {
            // Flush the tail batch before the terminal event.
            if !abandoned && !batch.is_empty() {
                let n = batch.len() as u64;
                if job.events.send(QueryEvent::Batch(batch)).is_ok() {
                    batches_sent += 1;
                    streamed += n;
                } else {
                    abandoned = true;
                }
            }
            let outcome = if abandoned {
                MatchOutcome::Cancelled
            } else {
                report.outcome
            };
            let done = QueryDone {
                outcome,
                embeddings: report.embeddings,
                truncated: !outcome.is_complete(),
                checksum: checksum.digest(),
                search_nodes: report.stats.search_nodes,
                elapsed,
            };
            // Book the terminal state *before* delivering the terminal
            // event: a client that reads `Engine::stats` right after its
            // `Done` frame must already see this query counted.
            lock(&shared.registry).remove(&job.id);
            {
                let mut t = lock(&shared.counters);
                t.active -= 1;
                t.batches += batches_sent;
                t.embeddings_streamed += streamed;
                match outcome {
                    MatchOutcome::Complete => t.completed += 1,
                    MatchOutcome::Cancelled => t.cancelled += 1,
                    MatchOutcome::TimedOut => t.deadline_expired += 1,
                    MatchOutcome::LimitReached => t.limit_reached += 1,
                }
            }
            let _ = job.events.send(QueryEvent::Done(done));
        }
        Err(e) => {
            lock(&shared.registry).remove(&job.id);
            {
                let mut t = lock(&shared.counters);
                t.active -= 1;
                t.batches += batches_sent;
                t.embeddings_streamed += streamed;
                t.failed += 1;
            }
            let _ = job.events.send(QueryEvent::Failed(format!("{e}")));
        }
    }
}
