//! A minimal JSON reader for the serving wire protocol.
//!
//! The workspace hand-writes every JSON *producer* (`TraceReport::to_json`,
//! the bench series, the `--stats-json` object); the serving layer is the
//! first component that must also *consume* JSON — request frames arrive
//! from untrusted clients. This module is a small recursive-descent parser
//! over the full JSON grammar, with two deliberate restrictions that suit a
//! length-prefixed control protocol:
//!
//! * numbers are parsed as `f64` and integers are re-extracted with an
//!   exactness check ([`Json::as_u64`]) — the protocol never carries
//!   integers above 2^53 (64-bit checksums travel as hex *strings*);
//! * recursion depth is capped so a hostile frame of `[[[[…` cannot
//!   overflow the connection thread's stack.

use std::fmt;

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order (duplicate keys keep the last value
    /// via [`Json::get`]'s front-to-back scan of a reversed store — we
    /// store in order and scan from the back).
    Obj(Vec<(String, Json)>),
}

/// A parse failure, with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the parser had reached.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after document"));
        }
        Ok(v)
    }

    /// Object member lookup (last occurrence wins, per common practice).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number that is one
    /// (exactly representable, no fractional part).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Num(n) if (0.0..=9_007_199_254_740_992.0).contains(&n) && n.fract() == 0.0 => {
                Some(n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escapes `s` as the *contents* of a JSON string literal (no quotes).
/// The producer-side companion to the parser, used by the protocol
/// encoders for error messages and graph names.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number {text:?}")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000
                                        + ((u32::from(code) - 0xD800) << 10)
                                        + (u32::from(low) - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&code) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(u32::from(code))
                                    .ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            // hex4 already advanced past the escape; skip
                            // the generic post-escape increment.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let Some(c) = s.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads four hex digits, leaving `pos` just past them.
    fn hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid utf-8 in \\u escape"))?;
        let v = u16::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(
            Json::parse("\"a\\nb\"").unwrap(),
            Json::Str("a\nb".to_string())
        );
        let v = Json::parse(r#"{"op":"submit","ids":[1,2,3],"deep":{"x":null}}"#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("submit"));
        let ids: Vec<u64> = v
            .get("ids")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|j| j.as_u64().unwrap())
            .collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(v.get("deep").and_then(|d| d.get("x")), Some(&Json::Null));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-3").unwrap().as_u64(), None);
        assert_eq!(Json::parse("0").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"abc",
            "{\"a\" 1}",
            "[1] 2",
            "{\"a\":}",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn unicode_escapes_round_trip() {
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\"").unwrap(),
            Json::Str("Aé".to_string())
        );
        assert!(Json::parse("\"\\ud800\"").is_err(), "lone surrogate");
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00!\"").unwrap(),
            Json::Str("\u{1F600}!".to_string()),
            "surrogate pair decodes"
        );
    }

    #[test]
    fn escape_produces_parseable_literals() {
        for s in [
            "plain",
            "with \"quotes\"",
            "line\nbreak",
            "tab\there",
            "\u{1}",
        ] {
            let lit = format!("\"{}\"", escape(s));
            assert_eq!(Json::parse(&lit).unwrap(), Json::Str(s.to_string()));
        }
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
    }
}
