//! TCP front end: one listener, one connection thread per client, the
//! framed protocol from [`super::proto`].
//!
//! The protocol is **synchronous per connection**: a connection processes
//! one request at a time, and a `submit` occupies it until the terminal
//! frame has been written. To cancel a query mid-stream, send the
//! `cancel` op from a *second* connection (or drop the submitting
//! connection — the engine notices the vanished client on its next batch
//! and aborts the query).

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};

use super::engine::{Engine, SubmitError};
use super::proto::{
    encode_batch, encode_cancelled, encode_delta_applied, encode_done, encode_error, encode_ok,
    encode_query_error, encode_stats, encode_submitted, parse_request, read_frame, write_frame,
    Request,
};
use super::QueryEvent;
use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::{thread, Arc};

/// A running serving endpoint. Dropping it stops the accept loop;
/// established connections run until their client disconnects.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:7878"`, port `0` for an ephemeral
    /// port) and starts accepting connections against `engine`.
    pub fn start(engine: Arc<Engine>, addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept = thread::Builder::new()
            .name("cfl-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &engine, &accept_stop))?;
        Ok(Server {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins it. Equivalent to dropping the
    /// server, but explicit at call sites that care about ordering.
    pub fn shutdown(self) {}

    /// Blocks until the accept loop exits — i.e. until a client sends the
    /// `shutdown` op (or the loop dies). This is how `cfl serve` parks its
    /// main thread.
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Drop still runs `stop_accepting`; with `accept` taken it only
        // sets the (already moot) stop flag.
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

fn accept_loop(listener: &TcpListener, engine: &Arc<Engine>, stop: &Arc<AtomicBool>) {
    loop {
        let conn = listener.accept();
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok((stream, _)) = conn else {
            continue; // transient accept error; keep serving
        };
        let engine = Arc::clone(engine);
        let stop = Arc::clone(stop);
        let spawned = thread::Builder::new()
            .name("cfl-serve-conn".to_string())
            .spawn(move || {
                let _ = serve_connection(stream, &engine, &stop);
            });
        if spawned.is_err() {
            // Out of threads: drop the connection; the client sees a
            // clean close and can retry.
            continue;
        }
    }
}

/// Runs one connection to completion. Returns `Ok(true)` iff the client
/// requested a server shutdown.
fn serve_connection(
    stream: TcpStream,
    engine: &Arc<Engine>,
    stop: &Arc<AtomicBool>,
) -> io::Result<bool> {
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    while let Some(frame) = read_frame(&mut reader)? {
        let request = match parse_request(&frame) {
            Ok(r) => r,
            Err(msg) => {
                write_frame(&mut writer, &encode_error(&msg, false))?;
                continue;
            }
        };
        match request {
            Request::Submit(spec) => match engine.submit(spec) {
                Ok(handle) => {
                    write_frame(&mut writer, &encode_submitted(handle.id()))?;
                    let id = handle.id();
                    // If a write fails the client is gone; dropping the
                    // handle aborts the query, and the `?` ends the
                    // connection thread.
                    loop {
                        match handle.recv() {
                            Some(QueryEvent::Batch(batch)) => {
                                write_frame(&mut writer, &encode_batch(id, &batch))?;
                            }
                            Some(QueryEvent::Done(done)) => {
                                write_frame(&mut writer, &encode_done(id, &done))?;
                                break;
                            }
                            Some(QueryEvent::Failed(msg)) => {
                                write_frame(&mut writer, &encode_query_error(id, &msg))?;
                                break;
                            }
                            None => break, // engine shut down mid-query
                        }
                    }
                }
                Err(e) => {
                    let retry = matches!(e, SubmitError::QueueFull);
                    write_frame(&mut writer, &encode_error(&e.to_string(), retry))?;
                }
            },
            Request::Cancel { id } => {
                write_frame(&mut writer, &encode_cancelled(engine.cancel(id)))?;
            }
            Request::ApplyDelta { graph, delta } => match engine.apply_delta(&graph, &delta) {
                Ok(applied) => write_frame(
                    &mut writer,
                    &encode_delta_applied(applied.epoch, applied.plans_refreshed),
                )?,
                Err(e) => write_frame(&mut writer, &encode_error(&e.to_string(), false))?,
            },
            Request::Stats => {
                write_frame(&mut writer, &encode_stats(&engine.stats()))?;
            }
            Request::Shutdown => {
                write_frame(&mut writer, &encode_ok())?;
                stop.store(true, Ordering::SeqCst);
                // Poke the accept loop so it observes the flag.
                let _ = TcpStream::connect(writer.local_addr()?);
                return Ok(true);
            }
        }
    }
    Ok(false)
}
