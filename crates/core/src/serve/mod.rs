//! Query serving: a long-lived engine that answers many matching queries
//! concurrently over shared data graphs, plus a framed TCP front end.
//!
//! The one-shot API ([`find_embeddings`](crate::find_embeddings)) and the
//! session API ([`DataGraph`](crate::DataGraph)) answer one query for one
//! caller. This module turns them into a *service*:
//!
//! * [`Engine`] — owns named graphs (each with an optional shared
//!   [`PlanCache`](crate::PlanCache)), admits queries through a bounded
//!   queue with immediate rejection on overload, executes them on a fixed
//!   worker pool with per-query limits/deadlines/cancellation, streams
//!   embeddings back in batches, and applies edge deltas with snapshot
//!   isolation for in-flight queries;
//! * [`Server`] / [`Client`] — a length-prefixed JSON protocol over TCP
//!   (`cfl serve` on the command line) described in [`proto`];
//! * [`json`] — the minimal JSON reader the protocol needs.
//!
//! Determinism is a design constraint throughout: each query runs
//! single-threaded on its worker, so its embedding sequence — witnessed
//! by [`EmbeddingChecksum`](crate::result::EmbeddingChecksum) — is
//! byte-identical to a serial one-shot run (`cfl match --checksum`)
//! regardless of how many queries the engine is serving concurrently.
//! See `docs/SERVING.md` for the architecture write-up and capacity
//! tuning guidance.

pub mod client;
mod engine;
pub mod json;
pub mod proto;
mod server;

pub use client::{submit_payload, Client, QueryResult};
pub use engine::{
    DeltaApplied, Engine, EngineConfig, QueryDone, QueryEvent, QueryHandle, QuerySpec,
    ServeDeltaError, SubmitError,
};
pub use server::Server;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatchConfig;
    use crate::result::{EmbeddingChecksum, MatchOutcome};
    use crate::session::DataGraph;
    use crate::sync::Arc;
    use cfl_graph::{graph_from_edges, Graph, GraphDelta};
    use std::thread::yield_now;
    use std::time::Duration;

    /// An unlabeled `n`-clique: a worst-case search space for unlabeled
    /// path queries, used to keep a worker busy deterministically.
    fn clique(n: u32) -> Graph {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push((u, v));
            }
        }
        graph_from_edges(&vec![0; n as usize], &edges).unwrap()
    }

    /// An unlabeled path query on `k` vertices.
    fn path_query(k: u32) -> Graph {
        let labels = vec![0u32; k as usize];
        let edges: Vec<(u32, u32)> = (0..k - 1).map(|i| (i, i + 1)).collect();
        graph_from_edges(&labels, &edges).unwrap()
    }

    /// Two triangles sharing vertex 0, with a pendant — enough structure
    /// for multi-embedding queries.
    fn data_graph() -> Graph {
        graph_from_edges(
            &[0, 1, 2, 1, 2, 0],
            &[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0), (2, 5)],
        )
        .unwrap()
    }

    fn triangle() -> Graph {
        graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    fn engine_with(config: EngineConfig) -> Engine {
        let e = Engine::new(config);
        e.add_graph("default", data_graph());
        e
    }

    fn drain(handle: &QueryHandle) -> (Vec<Vec<u32>>, QueryEvent) {
        let mut embs = Vec::new();
        loop {
            match handle.recv().expect("stream ended without terminal event") {
                QueryEvent::Batch(b) => embs.extend(b),
                terminal => return (embs, terminal),
            }
        }
    }

    /// Serial reference run over the same graph/config, for checksum
    /// identity.
    fn reference(q: &Graph) -> (u64, u64) {
        let g = data_graph();
        let session = DataGraph::new(&g);
        let mut c = EmbeddingChecksum::new();
        let report = session
            .find_embeddings(q, &MatchConfig::exhaustive(), |m| {
                c.update(m);
                true
            })
            .unwrap();
        (c.digest(), report.embeddings)
    }

    #[test]
    fn served_query_matches_serial_reference() {
        let engine = engine_with(EngineConfig {
            batch_size: 1, // force one batch per embedding
            ..EngineConfig::default()
        });
        let handle = engine
            .submit(QuerySpec::new("default", triangle()))
            .unwrap();
        let (embs, terminal) = drain(&handle);
        let QueryEvent::Done(done) = terminal else {
            panic!("expected done, got {terminal:?}")
        };
        let (want_digest, want_count) = reference(&triangle());
        assert_eq!(done.outcome, MatchOutcome::Complete);
        assert!(!done.truncated);
        assert_eq!(done.embeddings, want_count);
        assert_eq!(done.checksum, want_digest, "server checksum != serial run");
        let mut c = EmbeddingChecksum::new();
        for e in &embs {
            c.update(e);
        }
        assert_eq!(c.digest(), want_digest, "streamed bytes != serial run");
        let t = engine.stats();
        assert_eq!(t.completed, 1);
        assert_eq!(t.embeddings_streamed, want_count);
        assert!(t.batches >= 2, "batch_size=2 must split the stream");
    }

    #[test]
    fn concurrent_queries_are_bytewise_deterministic() {
        let engine = engine_with(EngineConfig {
            workers: 4,
            batch_size: 3,
            ..EngineConfig::default()
        });
        let queries: Vec<Graph> = vec![
            triangle(),
            graph_from_edges(&[0, 1], &[(0, 1)]).unwrap(),
            graph_from_edges(&[1, 2], &[(0, 1)]).unwrap(),
            graph_from_edges(&[2, 0, 1], &[(0, 1), (1, 2)]).unwrap(),
        ];
        let references: Vec<(u64, u64)> = queries.iter().map(reference).collect();
        for round in 0..3 {
            let handles: Vec<QueryHandle> = queries
                .iter()
                .map(|q| engine.submit(QuerySpec::new("default", q.clone())).unwrap())
                .collect();
            for (i, h) in handles.iter().enumerate() {
                let (_, terminal) = drain(h);
                let QueryEvent::Done(done) = terminal else {
                    panic!("query {i} round {round}: {terminal:?}")
                };
                assert_eq!(
                    (done.checksum, done.embeddings),
                    references[i],
                    "query {i} round {round} diverged from serial run"
                );
            }
        }
    }

    #[test]
    fn pre_cancelled_query_stops_within_one_quantum() {
        // One worker and a FIFO queue: the pin query occupies the worker
        // while the victim waits behind it, so the victim's token is
        // latched strictly before its enumeration starts. A query whose
        // token is cancelled at start must stop within one backtrack
        // quantum — on a 60-clique an unlabeled 5-path would otherwise
        // explore millions of nodes.
        let engine = Engine::new(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        engine.add_graph("blob", clique(60));
        let pin = engine
            .submit(QuerySpec {
                count_only: true,
                ..QuerySpec::new("blob", path_query(5))
            })
            .unwrap();
        let victim = engine
            .submit(QuerySpec {
                count_only: true,
                ..QuerySpec::new("blob", path_query(5))
            })
            .unwrap();
        victim.cancel(); // latched while the victim is still queued
        pin.cancel(); // release the worker
        let (_, terminal) = drain(&victim);
        let QueryEvent::Done(done) = terminal else {
            panic!("expected done, got {terminal:?}")
        };
        assert_eq!(done.outcome, MatchOutcome::Cancelled);
        assert!(done.truncated);
        assert!(
            done.search_nodes <= crate::exec::CANCEL_QUANTUM,
            "stopped after {} nodes, more than one quantum",
            done.search_nodes
        );
        let (_, pin_terminal) = drain(&pin);
        assert!(matches!(pin_terminal, QueryEvent::Done(_)));
        assert_eq!(engine.stats().cancelled, 2);
        assert!(cfl_verify::check_serve_trace(&engine.stats()).is_clean());
    }

    #[test]
    fn limit_and_deadline_mark_truncation() {
        let engine = engine_with(EngineConfig::default());
        let handle = engine
            .submit(QuerySpec {
                limit: Some(1),
                ..QuerySpec::new("default", triangle())
            })
            .unwrap();
        let (embs, terminal) = drain(&handle);
        let QueryEvent::Done(done) = terminal else {
            panic!("{terminal:?}")
        };
        assert_eq!(done.outcome, MatchOutcome::LimitReached);
        assert!(done.truncated);
        assert_eq!(done.embeddings, 1);
        assert_eq!(embs.len(), 1);

        // A zero deadline on a large search expires at the first quantum
        // poll.
        engine.add_graph("blob", clique(40));
        let handle = engine
            .submit(QuerySpec {
                deadline: Some(Duration::ZERO),
                count_only: true,
                ..QuerySpec::new("blob", path_query(4))
            })
            .unwrap();
        let (_, terminal) = drain(&handle);
        let QueryEvent::Done(done) = terminal else {
            panic!("{terminal:?}")
        };
        assert_eq!(done.outcome, MatchOutcome::TimedOut);
        assert!(done.truncated);
        let t = engine.stats();
        assert_eq!((t.limit_reached, t.deadline_expired), (1, 1));
    }

    #[test]
    fn unknown_graph_is_admitted_and_failed() {
        let engine = engine_with(EngineConfig::default());
        let err = engine
            .submit(QuerySpec::new("nope", triangle()))
            .unwrap_err();
        assert_eq!(err, SubmitError::UnknownGraph("nope".to_string()));
        let t = engine.stats();
        assert_eq!((t.submitted, t.admitted, t.failed), (1, 1, 1));
        assert!(cfl_verify::check_serve_trace(&t).is_clean());
    }

    #[test]
    fn delta_swaps_graph_for_new_queries() {
        let engine = engine_with(EngineConfig::default());
        let q = triangle();
        let before = {
            let (_, QueryEvent::Done(d)) =
                drain(&engine.submit(QuerySpec::new("default", q.clone())).unwrap())
            else {
                panic!("terminal")
            };
            d.embeddings
        };
        // Deleting a triangle edge removes embeddings; inserting it back
        // restores them.
        let mut cut = GraphDelta::new();
        cut.delete(0, 1);
        let applied = engine.apply_delta("default", &cut).unwrap();
        assert_eq!(applied.epoch, 1);
        let after = {
            let (_, QueryEvent::Done(d)) =
                drain(&engine.submit(QuerySpec::new("default", q.clone())).unwrap())
            else {
                panic!("terminal")
            };
            d.embeddings
        };
        assert!(after < before, "{after} !< {before}");
        let mut back = GraphDelta::new();
        back.insert(0, 1);
        let applied = engine.apply_delta("default", &back).unwrap();
        assert_eq!(applied.epoch, 2);
        let restored = {
            let (_, QueryEvent::Done(d)) =
                drain(&engine.submit(QuerySpec::new("default", q)).unwrap())
            else {
                panic!("terminal")
            };
            d.embeddings
        };
        assert_eq!(restored, before);
        let t = engine.stats();
        assert_eq!(t.deltas_applied, 2);
        assert!(cfl_verify::check_serve_trace(&t).is_clean());
        assert!(matches!(
            engine.apply_delta("missing", &back),
            Err(ServeDeltaError::UnknownGraph(_))
        ));
    }

    #[test]
    fn full_queue_rejects_submissions() {
        // One worker, zero queue depth (rendezvous hand-off): once the
        // worker is busy, the next submission cannot be queued anywhere
        // and must bounce with QueueFull.
        let engine = Engine::new(EngineConfig {
            workers: 1,
            queue_depth: 0,
            ..EngineConfig::default()
        });
        engine.add_graph("blob", clique(50));
        let spec = || QuerySpec {
            count_only: true,
            ..QuerySpec::new("blob", path_query(5))
        };
        // A rendezvous enqueue succeeds only while the worker is waiting,
        // so even the first submission can transiently bounce before the
        // worker reaches its receive; retry until it lands.
        let pin = loop {
            match engine.submit(spec()) {
                Ok(h) => break h,
                Err(SubmitError::QueueFull) => yield_now(),
                Err(e) => panic!("unexpected error {e}"),
            }
        };
        let mut rejected = false;
        for _ in 0..200 {
            match engine.submit(spec()) {
                Err(SubmitError::QueueFull) => {
                    rejected = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
                Ok(extra) => {
                    extra.cancel();
                    drop(extra);
                }
            }
            yield_now();
        }
        assert!(rejected, "full queue never rejected");
        pin.cancel();
        let (_, terminal) = drain(&pin);
        assert!(matches!(terminal, QueryEvent::Done(_)));
        let t = engine.stats();
        assert!(t.rejected >= 1);
        assert!(cfl_verify::check_serve_trace(&t).is_clean());
    }

    #[test]
    fn dropped_handle_aborts_query() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            batch_size: 1,
            ..EngineConfig::default()
        });
        engine.add_graph("blob", clique(50));
        let handle = engine
            .submit(QuerySpec::new("blob", path_query(4)))
            .unwrap();
        drop(handle); // client vanishes; worker must not wedge
                      // A subsequent query on the same single worker proves the worker
                      // escaped the abandoned stream.
        let check = engine.submit(QuerySpec::new("blob", triangle())).unwrap();
        let (_, terminal) = drain(&check);
        assert!(matches!(terminal, QueryEvent::Done(_)));
        let t = engine.stats();
        assert_eq!(t.cancelled, 1, "abandoned query classifies as cancelled");
        assert!(cfl_verify::check_serve_trace(&t).is_clean());
    }

    #[test]
    fn tcp_round_trip_submit_cancel_delta_stats() {
        let engine = Arc::new(engine_with(EngineConfig {
            batch_size: 2,
            ..EngineConfig::default()
        }));
        let server = Server::start(Arc::clone(&engine), "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();

        // Submit a triangle query and check the stream against the serial
        // reference.
        let result = client
            .run_query(r#"{"op":"submit","query":{"labels":[0,1,2],"edges":[[0,1],[1,2],[2,0]]}}"#)
            .unwrap()
            .unwrap();
        let (want_digest, want_count) = reference(&triangle());
        assert_eq!(result.outcome, "complete");
        assert_eq!(result.embeddings, want_count);
        assert_eq!(result.received, want_count);
        assert_eq!(result.checksum, format!("0x{want_digest:016x}"));
        assert_eq!(result.received_checksum, result.checksum);

        // Cancel an unknown id: well-formed response, cancelled=false.
        let resp = client.request(r#"{"op":"cancel","id":999}"#).unwrap();
        assert_eq!(
            resp.get("cancelled").and_then(json::Json::as_bool),
            Some(false)
        );

        // Apply a delta and observe the epoch bump.
        let resp = client
            .request(r#"{"op":"apply-delta","delete":[[0,1]]}"#)
            .unwrap();
        assert_eq!(resp.get("ok").and_then(json::Json::as_bool), Some(true));
        assert_eq!(resp.get("epoch").and_then(json::Json::as_u64), Some(1));

        // Stats reflect the completed query and the delta.
        let resp = client.request(r#"{"op":"stats"}"#).unwrap();
        let stats = resp.get("stats").expect("stats body");
        assert_eq!(stats.get("completed").and_then(json::Json::as_u64), Some(1));
        assert_eq!(
            stats.get("deltas_applied").and_then(json::Json::as_u64),
            Some(1)
        );

        // Malformed frame: error response, connection stays usable.
        let resp = client.request(r#"{"op":"warp"}"#).unwrap();
        assert_eq!(resp.get("ok").and_then(json::Json::as_bool), Some(false));
        let resp = client.request(r#"{"op":"stats"}"#).unwrap();
        assert_eq!(resp.get("ok").and_then(json::Json::as_bool), Some(true));

        drop(client);
        server.shutdown();
    }

    #[test]
    fn tcp_cancel_from_second_connection() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        engine.add_graph("blob", clique(60));
        let engine = Arc::new(engine);
        let server = Server::start(Arc::clone(&engine), "127.0.0.1:0").unwrap();

        let mut submitter = Client::connect(server.addr()).unwrap();
        submitter
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        submitter
            .send(
                r#"{"op":"submit","graph":"blob","count_only":true,
                    "query":{"labels":[0,0,0,0,0],"edges":[[0,1],[1,2],[2,3],[3,4]]}}"#,
            )
            .unwrap();
        let ack = submitter.recv().unwrap().expect("ack");
        let id = ack.get("id").and_then(json::Json::as_u64).expect("id");

        let mut canceller = Client::connect(server.addr()).unwrap();
        canceller
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let resp = canceller
            .request(&format!("{{\"op\":\"cancel\",\"id\":{id}}}"))
            .unwrap();
        assert_eq!(
            resp.get("cancelled").and_then(json::Json::as_bool),
            Some(true)
        );

        // The submitter's stream now terminates with outcome=cancelled.
        let terminal = submitter.recv().unwrap().expect("terminal frame");
        let done = terminal.get("done").expect("done body");
        assert_eq!(
            done.get("outcome").and_then(json::Json::as_str),
            Some("cancelled")
        );
        server.shutdown();
    }

    #[test]
    fn tcp_shutdown_op_stops_accepting() {
        let engine = Arc::new(engine_with(EngineConfig::default()));
        let server = Server::start(Arc::clone(&engine), "127.0.0.1:0").unwrap();
        let addr = server.addr();
        let mut client = Client::connect(addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let resp = client.request(r#"{"op":"shutdown"}"#).unwrap();
        assert_eq!(resp.get("ok").and_then(json::Json::as_bool), Some(true));
        server.shutdown();
        // The listener is gone: new connections fail (immediately or on
        // first use).
        let refused = match Client::connect(addr) {
            Err(_) => true,
            Ok(mut c) => {
                let _ = c.set_read_timeout(Some(Duration::from_secs(5)));
                c.request(r#"{"op":"stats"}"#).is_err()
            }
        };
        assert!(refused, "server still serving after shutdown");
    }
}
