//! The crate's single gateway to synchronization primitives.
//!
//! Everything in `cfl-match` that locks, parks, spawns, or touches an
//! atomic imports it from here, **never** from `std::sync`/`std::thread`
//! directly (`xtask lint` enforces this). The payoff: rebuilding with the
//! `loom-model` feature swaps the interleaving-sensitive primitives for
//! the `loom` shim's model-aware versions, so the loom models in
//! [`crate::models`] exhaustively schedule the *actual* pool and cursor
//! code, not a parallel re-implementation. Outside a model run the loom
//! types delegate straight to `std`, so the feature does not change the
//! behavior of ordinary tests.
//!
//! Three groups:
//!
//! * **cfg-switched** (`Mutex`, `Condvar`, `MutexGuard`, `atomic::*`,
//!   `thread::{spawn, Builder, JoinHandle, yield_now}`) — the primitives
//!   whose interleavings the models check.
//! * **always-`std`** (`Arc`, `OnceLock`, `PoisonError`, `LockResult`,
//!   `thread::{scope, available_parallelism}`) — either interleaving-
//!   insensitive (immutable after publication) or never exercised inside a
//!   model (scoped enumeration workers; models drive the enumeration
//!   cursor protocol directly instead).
//! * the `loom-model`-only re-export of [`loom::model`] for the models.

// Interleaving-insensitive: shared ownership and write-once cells hold
// immutable data after publication; poison plumbing is error handling.
pub(crate) use std::sync::{Arc, OnceLock, PoisonError};

#[cfg(not(feature = "loom-model"))]
pub(crate) use std::sync::{Condvar, Mutex, MutexGuard};

#[cfg(feature = "loom-model")]
pub(crate) use loom::sync::{Condvar, Mutex, MutexGuard};

// Only the models (a test-only module) run model executions.
#[cfg(all(test, feature = "loom-model"))]
pub(crate) use loom::model;

pub(crate) mod atomic {
    #[cfg(not(feature = "loom-model"))]
    pub(crate) use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

    #[cfg(feature = "loom-model")]
    pub(crate) use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

pub(crate) mod thread {
    // `scope` never runs inside a model (the models exercise the
    // work-stealing claim protocol on plain spawned threads instead), and
    // `available_parallelism` is a host query; both stay `std` under every
    // cfg. This module is the designated shim, so the direct `std::thread`
    // uses here are the allowlisted ones.
    pub(crate) use std::thread::{available_parallelism, scope};

    #[cfg(not(feature = "loom-model"))]
    pub(crate) use std::thread::{spawn, Builder, JoinHandle};

    #[cfg(feature = "loom-model")]
    pub(crate) use loom::thread::{spawn, Builder, JoinHandle};
}
