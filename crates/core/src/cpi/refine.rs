//! Bottom-up CPI refinement — Algorithm 4, level-synchronous.
//!
//! The top-down pass only exploits ancestors, so a candidate may lack any
//! neighbor among the candidates of its children (downward tree edges and
//! downward C-NTEs, Table 2). This pass walks the BFS tree bottom-up and
//! prunes such candidates; adjacency-list pruning (lines 8–11) is realized
//! by [`CpiBuilder::prune_unreachable`](super::CpiBuilder::prune_unreachable)
//! plus [`CpiBuilder::freeze`](super::CpiBuilder::freeze), which drops every
//! entry touching a dead candidate.
//!
//! Within a level every vertex's pruning decision reads only the alive
//! flags of strictly *deeper* vertices — finalized by earlier level
//! iterations — so the per-vertex kill lists are computed as independent
//! tasks on the build worker pool and applied serially at a per-level
//! barrier. The applied flags are therefore identical to the sequential
//! sweep's for every thread count. Vertices that lose candidates are
//! recorded in the builder's dirty set, which is what lets
//! `prune_unreachable` skip untouched subtrees afterwards.

use cfl_graph::VertexId;

use super::scratch::with_scratch;
use super::CpiBuilder;
use crate::filters::FilterContext;
use crate::pool::parallel_map;

/// Runs Algorithm 4 serially.
#[cfg(any(test, feature = "oracle"))]
pub(crate) fn bottom_up(ctx: &FilterContext<'_>, s: &mut CpiBuilder) {
    bottom_up_with(ctx, s, 1);
}

/// Runs Algorithm 4 over a top-down builder, flipping alive flags, with
/// per-level parallelism across up to `threads` participants. Returns the
/// number of candidates killed (the refinement-effectiveness counter the
/// trace layer reports; computing it is two integer adds per kill, so it
/// is returned unconditionally rather than feature-gated).
pub(crate) fn bottom_up_with(ctx: &FilterContext<'_>, s: &mut CpiBuilder, threads: usize) -> u64 {
    // The alive bitmaps must stay parallel to the candidate arrays — the
    // flips below index both by the same position.
    debug_assert!(s
        .alive
        .iter()
        .zip(&s.candidates)
        .all(|(a, c)| a.len() == c.len()));

    let mut killed: u64 = 0;
    for lev in (1..=s.tree.num_levels()).rev() {
        let vlev: Vec<VertexId> = s.tree.level_vertices(lev).to_vec();
        // Kill lists are computed against deeper levels only, so the tasks
        // of one level never observe each other's flips.
        let deads: Vec<Vec<u32>> =
            parallel_map(threads, vlev.len(), |idx| dead_positions(ctx, s, vlev[idx]));
        for (&u, dead) in vlev.iter().zip(&deads) {
            if dead.is_empty() {
                continue;
            }
            killed += dead.len() as u64;
            let ui = u as usize;
            for &i in dead {
                s.alive[ui][i as usize] = false;
            }
            // Candidates died after u's rows and children were built:
            // orphans may now exist below u (see `prune_unreachable`).
            s.dirty.insert(u);
        }
    }
    killed
}

/// Candidate positions of `u` that lack a neighbor among the alive
/// candidates of some lower-level query neighbor (tree child or downward
/// C-NTE). The label/degree gate of Lemma 5.1's counter pass is already
/// implied — every candidate of `u` passed it during generation.
fn dead_positions(ctx: &FilterContext<'_>, s: &CpiBuilder, u: VertexId) -> Vec<u32> {
    let q = ctx.q;
    let g = ctx.g;
    let lev = s.tree.level(u);
    let lower: Vec<VertexId> = q
        .neighbors(u)
        .iter()
        .copied()
        .filter(|&w| s.tree.level(w) > lev)
        .collect();
    if lower.is_empty() {
        return Vec::new();
    }

    let ui = u as usize;
    let adj = &ctx.g_stats.label_adj;
    let lu = q.label(u);
    let mut dead: Vec<u32> = Vec::new();
    with_scratch(g.num_vertices(), |scr| {
        let mut live = std::mem::take(&mut scr.list);
        live.extend((0..s.candidates[ui].len() as u32).filter(|&i| s.alive[ui][i as usize]));
        for &w in &lower {
            if live.is_empty() {
                // Everything already condemned; further constraints can
                // only agree.
                break;
            }
            // The mask gates candidates of `u` — all labeled `l_q(u)` —
            // so only the label-matching neighbor groups matter.
            for vw in s.alive_candidates(w) {
                scr.mask.insert_all(adj.neighbors_with_label(vw, lu));
            }
            live.retain(|&i| {
                let keep = scr.mask.contains(s.candidates[ui][i as usize]);
                if !keep {
                    dead.push(i);
                }
                keep
            });
            scr.mask.clear();
        }
        live.clear();
        scr.list = live;
    });
    dead
}

#[cfg(test)]
mod tests {
    use crate::config::CpiMode;
    use crate::cpi::Cpi;
    use crate::filters::{FilterContext, GraphStats};
    use cfl_graph::{graph_from_edges, Graph};

    fn build(q: &Graph, g: &Graph, root: u32, mode: CpiMode) -> Cpi {
        let qs = GraphStats::build(q);
        let gs = GraphStats::build(g);
        let ctx = FilterContext::new(q, g, &qs, &gs);
        Cpi::build(&ctx, root, mode)
    }

    #[test]
    fn refinement_prunes_candidates_without_child_support() {
        // Query path: u0(A) – u1(B) – u2(C) – u3(D). The failure must sit
        // two hops below the candidate, because the 1-hop NLF filter of the
        // top-down pass already removes direct neighborhood mismatches.
        let q = graph_from_edges(&[0, 1, 2, 3], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        // Data: A(0)–B(1)–C(2)–D(3) chain plus B(4)–C(5) hanging off A(0),
        // where C(5) has no D neighbor. B(4) passes every local filter (it
        // has A and C neighbors, degree 2, MND 2) so top-down keeps it;
        // bottom-up prunes it because its only C neighbor is not in u2.C.
        let g = graph_from_edges(
            &[0, 1, 2, 3, 1, 2],
            &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 5)],
        )
        .unwrap();
        let td = build(&q, &g, 0, CpiMode::TopDown);
        assert_eq!(td.candidates(1), &[1, 4], "top-down keeps the impostor B");
        let refined = build(&q, &g, 0, CpiMode::TopDownRefined);
        assert_eq!(refined.candidates(1), &[1]);
        assert_eq!(refined.candidates(0), &[0]);
        assert_eq!(refined.candidates(2), &[2]);
        assert_eq!(refined.candidates(3), &[3]);
    }

    #[test]
    fn refinement_prunes_dangling_adjacency_entries() {
        // Same shape, but A(0) also neighbors the doomed B(4): the row of
        // A(0) initially lists both B(1) and B(4); after refinement it must
        // list only B(1).
        let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2)]).unwrap();
        let g = graph_from_edges(&[0, 1, 2, 1], &[(0, 1), (1, 2), (0, 3)]).unwrap();
        let refined = build(&q, &g, 0, CpiMode::TopDownRefined);
        assert_eq!(refined.candidates(0), &[0]);
        assert_eq!(refined.candidates(1), &[1]);
        let row = refined.row(1, 0);
        let verts: Vec<u32> = row
            .iter()
            .map(|&p| refined.candidates(1)[p as usize])
            .collect();
        assert_eq!(verts, vec![1]);
    }

    #[test]
    fn refinement_preserves_soundness() {
        // Two disjoint triangles in G, both must survive refinement.
        let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let g = graph_from_edges(
            &[0, 1, 2, 0, 1, 2],
            &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)],
        )
        .unwrap();
        let cpi = build(&q, &g, 0, CpiMode::TopDownRefined);
        assert_eq!(cpi.candidates(0), &[0, 3]);
        assert_eq!(cpi.candidates(1), &[1, 4]);
        assert_eq!(cpi.candidates(2), &[2, 5]);
    }

    #[test]
    fn downward_cntes_prune() {
        // Query: u0(A) with children u1(B), and u1 child u2(C); plus C-NTE
        // u0–u2. Data has an A–B–C path where A lacks the direct A–C edge:
        // top-down already handles upward C-NTE for u2 (u0 visited), so make
        // the failure on the *downward* side: A(3)'s chain B(4)-C(5) exists
        // but A(3)–C(5) edge missing → u2 candidate C(5) pruned top-down
        // (C-NTE up), then B(4) pruned bottom-up, then A(3).
        let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let g = graph_from_edges(
            &[0, 1, 2, 0, 1, 2],
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5)],
        )
        .unwrap();
        let cpi = build(&q, &g, 0, CpiMode::TopDownRefined);
        assert_eq!(cpi.candidates(0), &[0]);
        assert_eq!(cpi.candidates(1), &[1]);
        assert_eq!(cpi.candidates(2), &[2]);
    }
}
