//! Bottom-up CPI refinement — Algorithm 4.
//!
//! The top-down pass only exploits ancestors, so a candidate may lack any
//! neighbor among the candidates of its children (downward tree edges and
//! downward C-NTEs, Table 2). This pass walks the BFS tree bottom-up and
//! prunes such candidates; adjacency-list pruning (lines 8–11) is realized
//! by [`CpiBuilder::prune_unreachable`](super::CpiBuilder::prune_unreachable)
//! plus [`CpiBuilder::freeze`](super::CpiBuilder::freeze), which drops every
//! entry touching a dead candidate.

use cfl_graph::VertexId;

use super::CpiBuilder;
use crate::filters::FilterContext;

/// Runs Algorithm 4 over a top-down builder, flipping alive flags.
pub(crate) fn bottom_up(ctx: &FilterContext<'_>, s: &mut CpiBuilder) {
    let q = ctx.q;
    let g = ctx.g;
    // The alive bitmaps must stay parallel to the candidate arrays — the
    // flips below index both by the same position.
    debug_assert!(s
        .alive
        .iter()
        .zip(&s.candidates)
        .all(|(a, c)| a.len() == c.len()));
    let mut cnt = vec![0u32; g.num_vertices()];
    let mut touched: Vec<VertexId> = Vec::new();

    for lev in (1..=s.tree.num_levels()).rev() {
        let vlev: Vec<VertexId> = s.tree.level_vertices(lev).to_vec();
        for &u in &vlev {
            // Lower-level neighbors: tree children and downward C-NTEs.
            let lower: Vec<VertexId> = q
                .neighbors(u)
                .iter()
                .copied()
                .filter(|&w| s.tree.level(w) > s.tree.level(u))
                .collect();
            if lower.is_empty() {
                continue;
            }

            let lu = q.label(u);
            let du = q.degree(u);
            let mut target = 0u32;
            for &w in &lower {
                // Counter pass of Lemma 5.1 over the *alive* candidates of w.
                let lower_cands: Vec<VertexId> = s.alive_candidates(w).collect();
                for &vw in &lower_cands {
                    for &v in g.neighbors(vw) {
                        if g.label(v) == lu && g.degree(v) >= du && cnt[v as usize] == target {
                            if target == 0 {
                                touched.push(v);
                            }
                            cnt[v as usize] += 1;
                        }
                    }
                }
                target += 1;
            }

            let ui = u as usize;
            for i in 0..s.candidates[ui].len() {
                if s.alive[ui][i] && cnt[s.candidates[ui][i] as usize] != target {
                    s.alive[ui][i] = false;
                }
            }
            for &v in &touched {
                cnt[v as usize] = 0;
            }
            touched.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::CpiMode;
    use crate::cpi::Cpi;
    use crate::filters::{FilterContext, GraphStats};
    use cfl_graph::{graph_from_edges, Graph};

    fn build(q: &Graph, g: &Graph, root: u32, mode: CpiMode) -> Cpi {
        let qs = GraphStats::build(q);
        let gs = GraphStats::build(g);
        let ctx = FilterContext::new(q, g, &qs, &gs);
        Cpi::build(&ctx, root, mode)
    }

    #[test]
    fn refinement_prunes_candidates_without_child_support() {
        // Query path: u0(A) – u1(B) – u2(C) – u3(D). The failure must sit
        // two hops below the candidate, because the 1-hop NLF filter of the
        // top-down pass already removes direct neighborhood mismatches.
        let q = graph_from_edges(&[0, 1, 2, 3], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        // Data: A(0)–B(1)–C(2)–D(3) chain plus B(4)–C(5) hanging off A(0),
        // where C(5) has no D neighbor. B(4) passes every local filter (it
        // has A and C neighbors, degree 2, MND 2) so top-down keeps it;
        // bottom-up prunes it because its only C neighbor is not in u2.C.
        let g = graph_from_edges(
            &[0, 1, 2, 3, 1, 2],
            &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 5)],
        )
        .unwrap();
        let td = build(&q, &g, 0, CpiMode::TopDown);
        assert_eq!(td.candidates(1), &[1, 4], "top-down keeps the impostor B");
        let refined = build(&q, &g, 0, CpiMode::TopDownRefined);
        assert_eq!(refined.candidates(1), &[1]);
        assert_eq!(refined.candidates(0), &[0]);
        assert_eq!(refined.candidates(2), &[2]);
        assert_eq!(refined.candidates(3), &[3]);
    }

    #[test]
    fn refinement_prunes_dangling_adjacency_entries() {
        // Same shape, but A(0) also neighbors the doomed B(4): the row of
        // A(0) initially lists both B(1) and B(4); after refinement it must
        // list only B(1).
        let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2)]).unwrap();
        let g = graph_from_edges(&[0, 1, 2, 1], &[(0, 1), (1, 2), (0, 3)]).unwrap();
        let refined = build(&q, &g, 0, CpiMode::TopDownRefined);
        assert_eq!(refined.candidates(0), &[0]);
        assert_eq!(refined.candidates(1), &[1]);
        let row = refined.row(1, 0);
        let verts: Vec<u32> = row
            .iter()
            .map(|&p| refined.candidates(1)[p as usize])
            .collect();
        assert_eq!(verts, vec![1]);
    }

    #[test]
    fn refinement_preserves_soundness() {
        // Two disjoint triangles in G, both must survive refinement.
        let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let g = graph_from_edges(
            &[0, 1, 2, 0, 1, 2],
            &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)],
        )
        .unwrap();
        let cpi = build(&q, &g, 0, CpiMode::TopDownRefined);
        assert_eq!(cpi.candidates(0), &[0, 3]);
        assert_eq!(cpi.candidates(1), &[1, 4]);
        assert_eq!(cpi.candidates(2), &[2, 5]);
    }

    #[test]
    fn downward_cntes_prune() {
        // Query: u0(A) with children u1(B), and u1 child u2(C); plus C-NTE
        // u0–u2. Data has an A–B–C path where A lacks the direct A–C edge:
        // top-down already handles upward C-NTE for u2 (u0 visited), so make
        // the failure on the *downward* side: A(3)'s chain B(4)-C(5) exists
        // but A(3)–C(5) edge missing → u2 candidate C(5) pruned top-down
        // (C-NTE up), then B(4) pruned bottom-up, then A(3).
        let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let g = graph_from_edges(
            &[0, 1, 2, 0, 1, 2],
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5)],
        )
        .unwrap();
        let cpi = build(&q, &g, 0, CpiMode::TopDownRefined);
        assert_eq!(cpi.candidates(0), &[0]);
        assert_eq!(cpi.candidates(1), &[1]);
        assert_eq!(cpi.candidates(2), &[2]);
    }
}
