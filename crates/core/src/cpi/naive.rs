//! Naive CPI construction (§4.1).
//!
//! `u.C` is simply every data vertex with label `l_q(u)`; adjacency lists
//! are all data edges between parent and child candidates. Sound but full
//! of false positives — this is the `CFL-Match-Naive` baseline of the CPI
//! ablation (Figure 15).

use cfl_graph::{BfsTree, VertexId};

use super::{Cpi, CpiBuilder};
use crate::filters::FilterContext;

/// Builds the naive CPI.
pub fn build_naive(ctx: &FilterContext<'_>, root: VertexId) -> Cpi {
    let q = ctx.q;
    let g = ctx.g;
    let n = q.num_vertices();
    let tree = BfsTree::new(q, root);
    let mut s = CpiBuilder::new(tree, n);

    for u in 0..n as VertexId {
        s.candidates[u as usize] = ctx
            .g_stats
            .label_index
            .vertices_with_label(q.label(u))
            .to_vec();
        s.alive[u as usize] = vec![true; s.candidates[u as usize].len()];
    }

    for u in 0..n as VertexId {
        let Some(p) = s.tree.parent(u) else { continue };
        let lu = q.label(u);
        let mut rows = super::FlatRows::default();
        rows.ends.reserve(s.candidates[p as usize].len());
        for &vp in &s.candidates[p as usize] {
            rows.data.extend(
                g.neighbors(vp)
                    .iter()
                    .copied()
                    .filter(|&v| g.label(v) == lu),
            );
            rows.close_row();
        }
        s.rows[u as usize] = rows;
    }

    s.freeze(q, g)
}

#[cfg(test)]
mod tests {
    use crate::config::CpiMode;
    use crate::cpi::Cpi;
    use crate::filters::{FilterContext, GraphStats};
    use cfl_graph::graph_from_edges;

    #[test]
    fn naive_keeps_all_label_matches() {
        let q = graph_from_edges(&[0, 1], &[(0, 1)]).unwrap();
        // Three label-0 vertices, only one connected to a label-1 vertex.
        let g = graph_from_edges(&[0, 0, 0, 1], &[(0, 3), (1, 2)]).unwrap();
        let qs = GraphStats::build(&q);
        let gs = GraphStats::build(&g);
        let ctx = FilterContext::new(&q, &g, &qs, &gs);
        let cpi = Cpi::build(&ctx, 0, CpiMode::Naive);
        assert_eq!(cpi.candidates(0), &[0, 1, 2]);
        assert_eq!(cpi.candidates(1), &[3]);
        // Rows: vertex 0 connects to 3; vertices 1, 2 have empty rows.
        assert_eq!(cpi.row(1, 0), &[0]);
        assert!(cpi.row(1, 1).is_empty());
        assert!(cpi.row(1, 2).is_empty());
    }
}
