//! The compact path-index (CPI), §4.1 and §A.2.
//!
//! The CPI mirrors a BFS tree `q_T` of the query: every query vertex `u`
//! (a CPI *node*) carries a candidate set `u.C ⊆ V(G)`, and for every tree
//! edge `(u.p, u)` the data edges between `u.p.C` and `u.C` are stored as
//! per-candidate adjacency lists `N_u^{u.p}(v)`.
//!
//! Following §A.2, adjacency lists store *positions* (offsets into the
//! child's candidate array) instead of raw vertex ids, so enumeration walks
//! the structure with no hashing. Total size is `O(|E(G)| · |V(q)|)`
//! (Section 4.1) — the paper's replacement for TurboISO's worst-case
//! exponential materialized path embeddings.
//!
//! # Memory layout
//!
//! The finalized index is four flat arenas in CSR style — no nested `Vec`s,
//! no per-row allocations, no pointer chasing on the enumeration hot path:
//!
//! ```text
//! cand_data:    [ u0.C … | u1.C … | u2.C … ]          candidate arena
//! cand_offsets: [ 0, |u0.C|, |u0.C|+|u1.C|, … ]        n+1 entries
//! row_data:     [ rows of u1 … | rows of u2 … ]        adjacency arena
//! row_offsets:  [ block(u1) | block(u2) | … ]          absolute offsets
//! row_starts:   [ start of each vertex's block ]       n+1 entries
//! ```
//!
//! For a non-root `u` with parent `p`, `u`'s *offset block* is
//! `row_offsets[row_starts[u] .. row_starts[u+1]]` and has `|p.C| + 1`
//! entries; consecutive entries delimit `row_data` slices holding
//! `N_u^{u.p}(v)` for each parent candidate `v` in order. The root's block
//! is empty. All four arenas are built once in `CpiBuilder::freeze`.
//!
//! # Ordering invariants
//!
//! Two orderings are guaranteed by construction and asserted directly by
//! `cfl-verify`:
//!
//! * every candidate slice `u.C` is in strictly ascending vertex order;
//! * every adjacency row is in strictly ascending *position* order — rows
//!   are produced by filtering an ascending CSR neighbor slice against the
//!   ascending candidate array, so positions inherit the order and carry
//!   no duplicates.
//!
//! Construction may run its per-level phases on the build worker pool
//! ([`Cpi::build_with`]); the frozen arenas are byte-identical for every
//! thread count, because each parallel task depends only on state
//! finalized before its phase began and all task outputs are committed or
//! spliced in vertex order.

mod naive;
pub(crate) mod refine;
pub(crate) mod scratch;
pub(crate) mod topdown;

pub use naive::build_naive;

use cfl_graph::{BfsTree, FixedBitSet, Graph, VertexId};

use crate::config::CpiMode;
use crate::filters::FilterContext;
use crate::pool::parallel_map;
use scratch::with_scratch;

/// The finalized, immutable compact path-index (flat arena layout; see the
/// module docs for the exact shape).
pub struct Cpi {
    /// The BFS tree of the query the index mirrors.
    pub tree: BfsTree,
    /// Candidate arena: `u.C` slices back to back, ascending vertex order
    /// within each slice.
    cand_data: Vec<VertexId>,
    /// `cand_data` CSR offsets, one entry per query vertex plus a sentinel.
    cand_offsets: Vec<u32>,
    /// Adjacency arena: positions into the owning child's candidate slice.
    row_data: Vec<u32>,
    /// Concatenated per-vertex offset blocks; entries are absolute offsets
    /// into `row_data`.
    row_offsets: Vec<u32>,
    /// `row_offsets[row_starts[u]..row_starts[u+1]]` is `u`'s offset block
    /// (`|p.C| + 1` entries for non-root `u`, empty for the root).
    row_starts: Vec<u32>,
}

impl Cpi {
    /// Builds the CPI serially. Equivalent to [`Cpi::build_with`] at one
    /// thread.
    pub fn build(ctx: &FilterContext<'_>, root: VertexId, mode: CpiMode) -> Cpi {
        Cpi::build_with(ctx, root, mode, 1)
    }

    /// Builds the CPI for `ctx.q` over `ctx.g` with BFS tree rooted at
    /// `root`, under the requested construction mode, running the
    /// per-level construction phases across up to `threads` participants
    /// on the build worker pool.
    ///
    /// The thread count only affects speed: the frozen arenas are
    /// byte-identical for every value (asserted by the
    /// `parallel_build_matches_serial` property test and the CI checksum
    /// gate). The naive mode is a measurement baseline and always builds
    /// serially.
    pub fn build_with(
        ctx: &FilterContext<'_>,
        root: VertexId,
        mode: CpiMode,
        threads: usize,
    ) -> Cpi {
        Cpi::build_inner(ctx, root, None, mode, threads)
    }

    /// Like [`Cpi::build_with`], but seeds the root's candidate set with a
    /// pre-verified, strictly ascending list — typically the one root
    /// selection already refined
    /// ([`crate::root::select_root_with_candidates`]), which saves
    /// re-filtering the label index for the root. The result is identical
    /// to [`Cpi::build_with`] whenever the seed equals the root's verified
    /// candidate set (debug-asserted). The naive measurement baseline
    /// ignores the seed and recomputes from scratch.
    pub fn build_seeded(
        ctx: &FilterContext<'_>,
        root: VertexId,
        root_cands: Vec<VertexId>,
        mode: CpiMode,
        threads: usize,
    ) -> Cpi {
        Cpi::build_inner(ctx, root, Some(root_cands), mode, threads)
    }

    fn build_inner(
        ctx: &FilterContext<'_>,
        root: VertexId,
        seed: Option<Vec<VertexId>>,
        mode: CpiMode,
        threads: usize,
    ) -> Cpi {
        let threads = threads.max(1);
        let top_down = |seed: Option<Vec<VertexId>>| match seed {
            Some(cands) => topdown::top_down_seeded(ctx, root, cands, threads),
            None => topdown::top_down_with(ctx, root, threads),
        };
        // Sub-phase wall clocks only exist under the trace feature; the
        // default build keeps the exact straight-line phase sequence.
        macro_rules! timed {
            ($counter:ident, $e:expr) => {{
                #[cfg(feature = "trace")]
                let t = std::time::Instant::now();
                let r = $e;
                ctx.rec(cfl_trace::BuildCounter::$counter, {
                    #[cfg(feature = "trace")]
                    {
                        t.elapsed().as_nanos() as u64
                    }
                    #[cfg(not(feature = "trace"))]
                    {
                        0
                    }
                });
                r
            }};
        }
        match mode {
            CpiMode::Naive => naive::build_naive(ctx, root),
            CpiMode::TopDown => {
                let mut builder = timed!(TopDownNs, top_down(seed));
                let orphans = timed!(PruneNs, builder.prune_unreachable());
                ctx.rec(cfl_trace::BuildCounter::UnreachableKills, orphans);
                timed!(FreezeNs, builder.freeze_with(ctx.q, ctx.g, threads))
            }
            CpiMode::TopDownRefined => {
                let mut builder = timed!(TopDownNs, top_down(seed));
                let kills = timed!(RefineNs, refine::bottom_up_with(ctx, &mut builder, threads));
                ctx.rec(cfl_trace::BuildCounter::RefineKills, kills);
                let orphans = timed!(PruneNs, builder.prune_unreachable());
                ctx.rec(cfl_trace::BuildCounter::UnreachableKills, orphans);
                timed!(FreezeNs, builder.freeze_with(ctx.q, ctx.g, threads))
            }
        }
    }

    /// Candidate set of query vertex `u`.
    #[inline]
    pub fn candidates(&self, u: VertexId) -> &[VertexId] {
        let u = u as usize;
        let lo = self.cand_offsets[u] as usize;
        let hi = self.cand_offsets[u + 1] as usize;
        &self.cand_data[lo..hi]
    }

    /// Adjacency list `N_u^{u.p}(v)` where `v` is the parent candidate at
    /// `parent_pos`; entries are positions into `candidates(u)`.
    ///
    /// The offset block of `u` is contiguous in `row_offsets`, so the two
    /// bounds come from one cache line in the common case and the arena
    /// slice needs no per-row indirection.
    #[inline]
    pub fn row(&self, u: VertexId, parent_pos: usize) -> &[u32] {
        let base = self.row_starts[u as usize] as usize + parent_pos;
        let lo = self.row_offsets[base] as usize;
        let hi = self.row_offsets[base + 1] as usize;
        &self.row_data[lo..hi]
    }

    /// CPI tree parent of `u` (`None` for the root).
    #[inline]
    pub fn parent(&self, u: VertexId) -> Option<VertexId> {
        self.tree.parent(u)
    }

    /// The root query vertex.
    #[inline]
    pub fn root(&self) -> VertexId {
        self.tree.root()
    }

    /// Whether some query vertex ended up with an empty candidate set
    /// (which proves zero embeddings by soundness).
    pub fn has_empty_candidate_set(&self) -> bool {
        self.cand_offsets.windows(2).any(|w| w[0] == w[1])
    }

    /// Total number of candidate entries over all query vertices.
    pub fn total_candidates(&self) -> u64 {
        self.cand_data.len() as u64
    }

    /// Total number of adjacency-list entries.
    pub fn total_edges(&self) -> u64 {
        self.row_data.len() as u64
    }

    /// Arena lengths `(candidates, row entries)` straight from the flat
    /// storage — cross-checked by `cfl-verify` against the per-vertex views.
    pub fn arena_totals(&self) -> (u64, u64) {
        (self.cand_data.len() as u64, self.row_data.len() as u64)
    }

    /// `|u.C|` for every query vertex, indexed by vertex id (the
    /// per-vertex CPI size metric the trace layer reports).
    pub fn candidate_counts(&self) -> Vec<u32> {
        self.cand_offsets.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Order-sensitive FNV-1a digest over all five arenas (lengths
    /// included). Two CPIs have equal checksums iff their flat storage is
    /// byte-identical — the property the bench harness and CI use to gate
    /// parallel builds against the serial reference.
    pub fn checksum(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mix = |h: &mut u64, words: &[u32]| {
            *h = (*h ^ words.len() as u64).wrapping_mul(PRIME);
            for &w in words {
                *h = (*h ^ u64::from(w)).wrapping_mul(PRIME);
            }
        };
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        mix(&mut h, &self.cand_data);
        mix(&mut h, &self.cand_offsets);
        mix(&mut h, &self.row_data);
        mix(&mut h, &self.row_offsets);
        mix(&mut h, &self.row_starts);
        h
    }

    /// Estimated heap footprint in bytes (the index-size metric of
    /// Figure 16(d)).
    pub fn memory_bytes(&self) -> u64 {
        ((self.cand_data.len() * std::mem::size_of::<VertexId>())
            + (self.cand_offsets.len() + self.row_data.len() + self.row_offsets.len())
                * std::mem::size_of::<u32>()
            + self.row_starts.len() * std::mem::size_of::<u32>()) as u64
    }
}

/// Test-only corruption hooks, compiled only with the `validate` feature.
///
/// Each mutator plants one precise structural defect while keeping the
/// index mechanically navigable, so tests can assert that the `cfl-verify`
/// checkers detect exactly the planted violation. The mutators operate
/// directly on the flat arenas, shifting offsets to keep every other slice
/// intact.
#[cfg(feature = "validate")]
impl Cpi {
    /// Injects `v` into `u.C` (keeping sort order) without linking it to
    /// any adjacency row. Detected as `cand-orphan`, plus a filter
    /// violation when `v` fails the candidate filters. Children's offset
    /// blocks gain an empty row so the structure stays navigable.
    pub fn corrupt_inject_candidate(&mut self, u: VertexId, v: VertexId) {
        let Err(pos) = self.candidates(u).binary_search(&v) else {
            return; // already a candidate; nothing to inject
        };
        let ui = u as usize;
        // Re-point u's own rows at the soon-to-be-shifted positions. Non-root
        // blocks end one entry before the next block starts, so the data span
        // is delimited by the block's first and last offsets.
        let block_lo = self.row_starts[ui] as usize;
        let block_hi = self.row_starts[ui + 1] as usize;
        if block_lo < block_hi {
            let lo = self.row_offsets[block_lo] as usize;
            let hi = self.row_offsets[block_hi - 1] as usize;
            for p in &mut self.row_data[lo..hi] {
                if *p as usize >= pos {
                    *p += 1;
                }
            }
        }
        let at = self.cand_offsets[ui] as usize + pos;
        self.cand_data.insert(at, v);
        for o in &mut self.cand_offsets[ui + 1..] {
            *o += 1;
        }
        // Each child's offset block grows by one empty row at `pos + 1`.
        let children: Vec<VertexId> = self.tree.children(u).to_vec();
        for c in children {
            let ci = c as usize;
            let block = self.row_starts[ci] as usize;
            let dup = self.row_offsets[block + pos];
            self.row_offsets.insert(block + pos + 1, dup);
            for s in &mut self.row_starts[ci + 1..] {
                *s += 1;
            }
        }
    }

    /// Overwrites the first entry of `u`'s adjacency row for `parent_pos`
    /// with an out-of-range position. Detected as `row-position`.
    ///
    /// # Panics
    /// When the targeted row is empty.
    pub fn corrupt_row_position(&mut self, u: VertexId, parent_pos: usize) {
        let base = self.row_starts[u as usize] as usize + parent_pos;
        let (start, end) = (
            self.row_offsets[base] as usize,
            self.row_offsets[base + 1] as usize,
        );
        assert!(start < end, "row must be non-empty to corrupt");
        let bad = self.candidates(u).len() as u32;
        self.row_data[start] = bad;
    }

    /// Deletes the last entry of `u`'s adjacency row for `parent_pos`,
    /// silently dropping one CPI edge. Detected as `row-complete`, plus
    /// `cand-orphan` when no other row references the candidate.
    ///
    /// # Panics
    /// When the targeted row is empty.
    pub fn corrupt_drop_row_entry(&mut self, u: VertexId, parent_pos: usize) {
        let base = self.row_starts[u as usize] as usize + parent_pos;
        let (start, end) = (
            self.row_offsets[base] as usize,
            self.row_offsets[base + 1] as usize,
        );
        assert!(start < end, "row must be non-empty to corrupt");
        self.row_data.remove(end - 1);
        // Offsets are absolute into the shared arena: every offset past the
        // removed entry shifts down by one, across all blocks.
        for o in &mut self.row_offsets {
            if *o as usize >= end {
                *o -= 1;
            }
        }
    }

    /// Swaps the first two entries of `u`'s adjacency row for `parent_pos`,
    /// breaking the documented strictly-ascending row ordering while
    /// keeping the entry set intact. Detected as `row-order`.
    ///
    /// # Panics
    /// When the targeted row has fewer than two entries.
    pub fn corrupt_swap_row_entries(&mut self, u: VertexId, parent_pos: usize) {
        let base = self.row_starts[u as usize] as usize + parent_pos;
        let (start, end) = (
            self.row_offsets[base] as usize,
            self.row_offsets[base + 1] as usize,
        );
        assert!(end - start >= 2, "row must have ≥ 2 entries to swap");
        self.row_data.swap(start, start + 1);
    }
}

/// Per-vertex adjacency rows in flat form: `data` holds the concatenated
/// rows (raw data-vertex ids during construction) and `ends[i]` is the
/// exclusive end of row `i`, which belongs to the parent's `i`-th
/// candidate in construction order. Two allocations per query vertex
/// instead of one `Vec` per parent candidate — the nested representation
/// put `O(Σ|u.p.C|)` allocations on the build hot path.
#[derive(Clone, Default)]
pub(crate) struct FlatRows {
    pub data: Vec<VertexId>,
    pub ends: Vec<u32>,
}

impl FlatRows {
    /// Row `i` (data-vertex ids, ascending).
    #[inline]
    pub fn row(&self, i: usize) -> &[VertexId] {
        let lo = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        &self.data[lo..self.ends[i] as usize]
    }

    /// Seals the current row: everything appended to `data` since the last
    /// call becomes row `num_rows()`.
    #[inline]
    pub fn close_row(&mut self) {
        self.ends.push(self.data.len() as u32);
    }

    /// Number of sealed rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.ends.len()
    }
}

/// Mutable CPI under construction: candidates carry alive flags and
/// adjacency rows store raw vertex ids. [`CpiBuilder::freeze`] compacts
/// everything into the flat arena representation, dropping pruned
/// candidates and dangling adjacency entries.
pub(crate) struct CpiBuilder {
    pub tree: BfsTree,
    /// Per query vertex: candidate vertex ids in strictly ascending order
    /// (established at generation time and preserved by every pruning
    /// pass).
    pub candidates: Vec<Vec<VertexId>>,
    /// Parallel alive flags (bottom-up refinement prunes by flipping these).
    pub alive: Vec<Vec<bool>>,
    /// For non-root `u`: flat adjacency rows, one row per parent candidate.
    pub rows: Vec<FlatRows>,
    /// Query vertices whose candidate set lost members *after* their
    /// adjacency rows and children were generated — i.e. bottom-up
    /// refinement kills and cascaded unreachable-pruning kills. The clean
    /// complement lets [`CpiBuilder::prune_unreachable`] skip whole
    /// subtrees (see there).
    pub dirty: FixedBitSet,
}

impl CpiBuilder {
    pub(crate) fn new(tree: BfsTree, n: usize) -> Self {
        CpiBuilder {
            tree,
            candidates: vec![Vec::new(); n],
            alive: vec![Vec::new(); n],
            rows: vec![FlatRows::default(); n],
            dirty: FixedBitSet::new(n),
        }
    }

    /// Iterator over the alive candidates of `u`.
    pub(crate) fn alive_candidates<'a>(
        &'a self,
        u: VertexId,
    ) -> impl Iterator<Item = VertexId> + 'a {
        self.candidates[u as usize]
            .iter()
            .zip(&self.alive[u as usize])
            .filter_map(|(&v, &a)| a.then_some(v))
    }

    /// Algorithm 4's top-down adjacency-list pruning (lines 8–11): kills
    /// every non-root candidate that no surviving parent candidate links
    /// to. A single bottom-up pass can leave such *orphans* behind — a
    /// candidate's referencing parent candidates may all die for reasons in
    /// sibling subtrees after the candidate itself was processed. Orphans
    /// are unreachable during enumeration (candidates are only ever entered
    /// through parent adjacency rows), so removing them shrinks the index
    /// without changing results. Processing in BFS order cascades the
    /// pruning down the tree.
    ///
    /// The dirty set makes the sweep proportional to what refinement
    /// actually touched: top-down construction only admits a candidate
    /// adjacent to a then-alive parent candidate, and a parent level is
    /// fully finalized before its children's rows are built — so after a
    /// pure top-down build *no* orphan exists, and orphans can only appear
    /// under a vertex that lost candidates afterwards. A clean parent
    /// therefore proves every candidate of `u` is still referenced, and
    /// `u` is skipped without touching its rows. Kills performed here mark
    /// `u` dirty so the cascade stays sound.
    ///
    /// Safety of the sweep: a candidate kept here is referenced by an alive
    /// parent candidate, so removing orphans never deletes the downward
    /// support (Lemma 5.1) of any surviving candidate along tree edges.
    /// Returns the number of orphans killed (cold path; the count is two
    /// adds per kill, so it is maintained unconditionally and reported by
    /// the trace layer when enabled).
    pub(crate) fn prune_unreachable(&mut self) -> u64 {
        let mut total: u64 = 0;
        let order: Vec<VertexId> = self.tree.order().collect();
        for &u in &order {
            let Some(p) = self.tree.parent(u) else {
                continue;
            };
            if !self.dirty.contains(p) {
                continue;
            }
            let ui = u as usize;
            // Data vertices referenced by some alive parent candidate's row.
            let mut referenced: Vec<VertexId> = Vec::new();
            let rows = &self.rows[ui];
            for (i, &alive) in self.alive[p as usize].iter().enumerate() {
                if alive && i < rows.num_rows() {
                    referenced.extend_from_slice(rows.row(i));
                }
            }
            referenced.sort_unstable();
            referenced.dedup();
            let cands = &self.candidates[ui];
            let alive_u = &mut self.alive[ui];
            let mut killed = false;
            for (j, &v) in cands.iter().enumerate() {
                if alive_u[j] && referenced.binary_search(&v).is_err() {
                    alive_u[j] = false;
                    killed = true;
                    total += 1;
                }
            }
            if killed {
                self.dirty.insert(u);
            }
        }
        total
    }

    /// Freezes the builder into the final flat-arena [`Cpi`] serially.
    pub(crate) fn freeze(self, q: &Graph, g: &Graph) -> Cpi {
        self.freeze_with(q, g, 1)
    }

    /// Freezes the builder into the final flat-arena [`Cpi`], running the
    /// per-vertex compaction work across up to `threads` participants.
    ///
    /// Three phases: (A) per-vertex final candidate slices (sorted,
    /// alive-only); (B) per-vertex row blocks — each adjacency row
    /// remapped from data-vertex ids to final positions through a pooled
    /// `|V(G)|`-sized lookup, dropping entries that point at dead
    /// candidates, with offsets relative to the vertex's own block; (C) a
    /// serial splice concatenating the per-vertex results into the four
    /// arenas in vertex order. Phases A and B are embarrassingly parallel
    /// (they read only the immutable builder), and the splice is
    /// deterministic, so the arena bytes never depend on the thread count.
    pub(crate) fn freeze_with(self, q: &Graph, g: &Graph, threads: usize) -> Cpi {
        let n = q.num_vertices();
        let final_cands: Vec<Vec<VertexId>> = parallel_map(threads, n, |u| {
            let mut c: Vec<VertexId> = self.candidates[u]
                .iter()
                .zip(&self.alive[u])
                .filter_map(|(&v, &a)| a.then_some(v))
                .collect();
            c.sort_unstable();
            c
        });

        // Per-vertex blocks: (offsets relative to the block, row data).
        type Block = (Vec<u32>, Vec<u32>);
        let blocks: Vec<Option<Block>> = parallel_map(threads, n, |ui| {
            let parent = self.tree.parent(ui as VertexId)?;
            let parent = parent as usize;
            Some(with_scratch(g.num_vertices(), |scr| {
                let child_c = &final_cands[ui];
                for (pos, &v) in child_c.iter().enumerate() {
                    scr.pos_of[v as usize] = pos as u32;
                }

                // Rows are indexed by the *original* parent candidate
                // order; emit them in the final (sorted, alive-only)
                // parent order.
                let orig_parent = &self.candidates[parent];
                let parent_alive = &self.alive[parent];
                let mut order = std::mem::take(&mut scr.list);
                order.extend((0..orig_parent.len() as u32).filter(|&i| parent_alive[i as usize]));
                order.sort_unstable_by_key(|&i| orig_parent[i as usize]);
                debug_assert_eq!(order.len(), final_cands[parent].len());

                let mut offsets: Vec<u32> = Vec::with_capacity(order.len() + 1);
                let mut data: Vec<u32> = Vec::new();
                offsets.push(0);
                let rows = &self.rows[ui];
                for &i in &order {
                    if (i as usize) < rows.num_rows() {
                        for &v in rows.row(i as usize) {
                            let pos = scr.pos_of[v as usize];
                            if pos != u32::MAX {
                                data.push(pos);
                            }
                        }
                    }
                    offsets.push(data.len() as u32);
                }

                for &v in child_c {
                    scr.pos_of[v as usize] = u32::MAX;
                }
                order.clear();
                scr.list = order;
                (offsets, data)
            }))
        });

        // Deterministic splice, vertex order. Arena bytes depend only on
        // the per-vertex task outputs, never on scheduling.
        let mut cand_offsets: Vec<u32> = Vec::with_capacity(n + 1);
        let mut cand_data: Vec<VertexId> = Vec::new();
        cand_offsets.push(0);
        for c in &final_cands {
            cand_data.extend_from_slice(c);
            cand_offsets.push(cand_data.len() as u32);
        }
        let mut row_starts: Vec<u32> = Vec::with_capacity(n + 1);
        let mut row_offsets: Vec<u32> = Vec::new();
        let mut row_data: Vec<u32> = Vec::new();
        row_starts.push(0);
        for block in &blocks {
            if let Some((offsets, data)) = block {
                let base = row_data.len() as u32;
                row_offsets.extend(offsets.iter().map(|&o| base + o));
                row_data.extend_from_slice(data);
            }
            row_starts.push(row_offsets.len() as u32);
        }

        Cpi {
            tree: self.tree,
            cand_data,
            cand_offsets,
            row_data,
            row_offsets,
            row_starts,
        }
    }

    /// Reference freeze producing the pre-arena nested representation:
    /// per-vertex candidate vectors, per-vertex offset vectors (relative to
    /// that vertex's own row data), and per-vertex row-data vectors.
    ///
    /// Kept as the differential oracle for the flat layout: tests assert
    /// [`CpiBuilder::freeze`] output is element-for-element equal, and the
    /// `oracle` feature exposes it to the `cfl-fuzz` differential targets
    /// (via [`crate::oracle`]).
    #[cfg(any(test, feature = "oracle"))]
    #[allow(clippy::type_complexity)]
    pub(crate) fn freeze_nested(
        &self,
        q: &Graph,
    ) -> (Vec<Vec<VertexId>>, Vec<Vec<u32>>, Vec<Vec<u32>>) {
        let n = q.num_vertices();
        let mut final_cands: Vec<Vec<VertexId>> = Vec::with_capacity(n);
        for u in 0..n {
            let mut c: Vec<VertexId> = self.candidates[u]
                .iter()
                .zip(&self.alive[u])
                .filter_map(|(&v, &a)| a.then_some(v))
                .collect();
            c.sort_unstable();
            final_cands.push(c);
        }

        let mut row_offsets: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut row_data: Vec<Vec<u32>> = vec![Vec::new(); n];
        for u in 0..n as VertexId {
            let Some(parent) = self.tree.parent(u) else {
                continue;
            };
            let parent = parent as usize;
            let child_c = &final_cands[u as usize];
            let orig_parent = &self.candidates[parent];
            let parent_alive = &self.alive[parent];
            let mut order: Vec<usize> = (0..orig_parent.len())
                .filter(|&i| parent_alive[i])
                .collect();
            order.sort_unstable_by_key(|&i| orig_parent[i]);

            let mut offsets = Vec::with_capacity(order.len() + 1);
            let mut data: Vec<u32> = Vec::new();
            offsets.push(0u32);
            for &i in &order {
                let row = if i < self.rows[u as usize].num_rows() {
                    self.rows[u as usize].row(i)
                } else {
                    &[]
                };
                for &v in row {
                    if let Ok(pos) = child_c.binary_search(&v) {
                        data.push(pos as u32);
                    }
                }
                offsets.push(data.len() as u32);
            }
            row_offsets[u as usize] = offsets;
            row_data[u as usize] = data;
        }

        (final_cands, row_offsets, row_data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CpiMode;
    use crate::filters::{FilterContext, GraphStats};
    use cfl_graph::graph_from_edges;
    use proptest::prelude::*;

    /// Paper Figure 7: query 0(A)-1(B), 0-2(C), 1-2, 1-3(D), 2-3 over the
    /// Figure 7(c) data graph.
    fn figure7() -> (Graph, Graph) {
        let q = graph_from_edges(&[0, 1, 2, 3], &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]).unwrap();
        // Data graph of Figure 7(c): labels A=0,B=1,C=2,D=3.
        // v1,v2: A. v3,v5,v7,v9: B. v4,v6,v8,v10: C. v11..v15: D (v13,v15 D too).
        // Edges per the figure:
        // v1-v3, v1-v5, v1-v7, v2-v7, v2-v9,
        // v3-v4, v5-v6, v7-v8, v9-v10 (B-C pairs), v1-v4?, ...
        // The exact figure edges are reproduced in the doc tests of the
        // engine; here a faithful subset suffices to exercise construction.
        let labels = [0, 0, 1, 2, 1, 2, 1, 2, 1, 2, 9, 3, 3, 3, 3, 3];
        //            v1 v2 v3 v4 v5 v6 v7 v8 v9 v10 pad v11..v15 (0-indexed shift)
        let _ = labels;
        let g = graph_from_edges(
            &[0, 0, 1, 2, 1, 2, 1, 2, 1, 2, 2, 3, 3, 3],
            &[
                (0, 2), // v1-B
                (0, 4),
                (0, 6),
                (1, 6),
                (1, 8),
                (2, 3), // B-C
                (4, 5),
                (6, 7),
                (8, 9),
                (0, 3), // A-C links so u2 candidates connect to u0
                (1, 9),
                (3, 11), // C-D
                (5, 12),
                (7, 13),
                (2, 11), // B-D
                (4, 12),
                (6, 13),
            ],
        )
        .unwrap();
        (q, g)
    }

    fn build(q: &Graph, g: &Graph, mode: CpiMode) -> Cpi {
        let qs = GraphStats::build(q);
        let gs = GraphStats::build(g);
        let ctx = FilterContext::new(q, g, &qs, &gs);
        Cpi::build(&ctx, 0, mode)
    }

    #[test]
    fn refined_cpi_is_subset_of_topdown_which_is_subset_of_naive() {
        let (q, g) = figure7();
        let naive = build(&q, &g, CpiMode::Naive);
        let td = build(&q, &g, CpiMode::TopDown);
        let full = build(&q, &g, CpiMode::TopDownRefined);
        for u in q.vertices() {
            let nv = naive.candidates(u);
            let tv = td.candidates(u);
            let fv = full.candidates(u);
            assert!(tv.iter().all(|v| nv.contains(v)), "u{u}: td ⊄ naive");
            assert!(fv.iter().all(|v| tv.contains(v)), "u{u}: full ⊄ td");
        }
        assert!(full.total_candidates() <= td.total_candidates());
        assert!(td.total_candidates() <= naive.total_candidates());
    }

    #[test]
    fn rows_reference_valid_positions() {
        let (q, g) = figure7();
        for mode in [CpiMode::Naive, CpiMode::TopDown, CpiMode::TopDownRefined] {
            let cpi = build(&q, &g, mode);
            for u in q.vertices() {
                if cpi.parent(u).is_none() {
                    continue;
                }
                let p = cpi.parent(u).unwrap();
                for i in 0..cpi.candidates(p).len() {
                    for &pos in cpi.row(u, i) {
                        assert!((pos as usize) < cpi.candidates(u).len());
                        // Row entries must be real data edges.
                        let vp = cpi.candidates(p)[i];
                        let vc = cpi.candidates(u)[pos as usize];
                        assert!(g.has_edge(vp, vc), "mode {mode:?}: ({vp},{vc})");
                    }
                }
            }
        }
    }

    #[test]
    fn rows_are_strictly_ascending() {
        let (q, g) = figure7();
        for mode in [CpiMode::Naive, CpiMode::TopDown, CpiMode::TopDownRefined] {
            let cpi = build(&q, &g, mode);
            for u in q.vertices() {
                let Some(p) = cpi.parent(u) else { continue };
                for i in 0..cpi.candidates(p).len() {
                    let row = cpi.row(u, i);
                    assert!(
                        row.windows(2).all(|w| w[0] < w[1]),
                        "mode {mode:?}: u{u} row {i} not strictly ascending: {row:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn size_metrics_are_consistent() {
        let (q, g) = figure7();
        let cpi = build(&q, &g, CpiMode::TopDownRefined);
        assert!(cpi.total_candidates() > 0);
        assert!(cpi.memory_bytes() >= cpi.total_candidates() * 4);
        assert!(!cpi.has_empty_candidate_set());
        let (cands, edges) = cpi.arena_totals();
        assert_eq!(cands, cpi.total_candidates());
        assert_eq!(edges, cpi.total_edges());
    }

    #[test]
    fn impossible_query_yields_empty_candidates() {
        // Query label 7 does not exist in the data graph.
        let q = graph_from_edges(&[7, 1], &[(0, 1)]).unwrap();
        let g = graph_from_edges(&[0, 1], &[(0, 1)]).unwrap();
        let cpi = build(&q, &g, CpiMode::TopDownRefined);
        assert!(cpi.has_empty_candidate_set());
    }

    #[test]
    fn checksum_distinguishes_arena_changes() {
        let (q, g) = figure7();
        let a = build(&q, &g, CpiMode::TopDownRefined);
        let b = build(&q, &g, CpiMode::TopDownRefined);
        assert_eq!(a.checksum(), b.checksum(), "deterministic rebuild");
        let naive = build(&q, &g, CpiMode::Naive);
        assert_ne!(a.checksum(), naive.checksum(), "different arenas");
    }

    /// Nested reference representation: per-vertex candidates, offsets, rows.
    type Nested = (Vec<Vec<VertexId>>, Vec<Vec<u32>>, Vec<Vec<u32>>);

    /// Asserts that `cpi` (flat arenas) is element-for-element equal to the
    /// nested reference output `(cands, offsets, rows)`.
    fn assert_matches_nested(q: &Graph, cpi: &Cpi, nested: &Nested) {
        let (cands, offsets, rows) = nested;
        for u in q.vertices() {
            assert_eq!(cpi.candidates(u), cands[u as usize].as_slice(), "u{u}.C");
            let Some(p) = cpi.parent(u) else {
                continue;
            };
            let offs = &offsets[u as usize];
            let data = &rows[u as usize];
            assert_eq!(offs.len(), cands[p as usize].len() + 1, "u{u} block len");
            for i in 0..cands[p as usize].len() {
                let expect = &data[offs[i] as usize..offs[i + 1] as usize];
                assert_eq!(cpi.row(u, i), expect, "u{u} row {i}");
            }
        }
    }

    /// Random connected labeled graph strategy (spanning tree + extras).
    fn connected_graph(
        n_range: std::ops::Range<usize>,
        num_labels: u32,
        extra_edges: usize,
    ) -> impl Strategy<Value = Graph> {
        n_range.prop_flat_map(move |n| {
            let labels = proptest::collection::vec(0..num_labels, n);
            let parents: Vec<BoxedStrategy<u32>> = (1..n).map(|i| (0..i as u32).boxed()).collect();
            let extras = proptest::collection::vec((0..n as u32, 0..n as u32), 0..=extra_edges);
            (labels, parents, extras).prop_map(move |(labels, parents, extras)| {
                let mut edges: Vec<(VertexId, VertexId)> = parents
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| (p, (i + 1) as u32))
                    .collect();
                for (a, b) in extras {
                    if a != b {
                        edges.push((a, b));
                    }
                }
                graph_from_edges(&labels, &edges).expect("valid endpoints")
            })
        })
    }

    proptest! {
        /// The flat arena freeze is element-for-element equal to the naive
        /// nested reference freeze, across modes and random graph pairs.
        #[test]
        fn flat_freeze_equals_nested_reference(
            q in connected_graph(2..7, 3, 4),
            g in connected_graph(7..20, 3, 14),
        ) {
            let qs = GraphStats::build(&q);
            let gs = GraphStats::build(&g);
            let ctx = FilterContext::new(&q, &g, &qs, &gs);
            for refined in [false, true] {
                let mut builder = topdown::top_down(&ctx, 0);
                if refined {
                    refine::bottom_up(&ctx, &mut builder);
                }
                builder.prune_unreachable();
                let nested = builder.freeze_nested(&q);
                let cpi = builder.freeze(&q, &g);
                assert_matches_nested(&q, &cpi, &nested);
                let (cands, edges) = cpi.arena_totals();
                prop_assert_eq!(cands, cpi.total_candidates());
                prop_assert_eq!(edges, cpi.total_edges());
            }
        }

        /// Parallel builds produce byte-identical flat arenas to the serial
        /// build at every thread count 1–8, in every construction mode.
        #[test]
        fn parallel_build_matches_serial(
            q in connected_graph(2..7, 3, 4),
            g in connected_graph(7..24, 3, 16),
        ) {
            let qs = GraphStats::build(&q);
            let gs = GraphStats::build(&g);
            let ctx = FilterContext::new(&q, &g, &qs, &gs);
            for mode in [CpiMode::TopDown, CpiMode::TopDownRefined] {
                let serial = Cpi::build(&ctx, 0, mode);
                for threads in 1..=8usize {
                    let par = Cpi::build_with(&ctx, 0, mode, threads);
                    prop_assert_eq!(&par.cand_data, &serial.cand_data);
                    prop_assert_eq!(&par.cand_offsets, &serial.cand_offsets);
                    prop_assert_eq!(&par.row_data, &serial.row_data);
                    prop_assert_eq!(&par.row_offsets, &serial.row_offsets);
                    prop_assert_eq!(&par.row_starts, &serial.row_starts);
                    prop_assert_eq!(par.checksum(), serial.checksum());
                }
            }
        }
    }
}
