//! The compact path-index (CPI), §4.1 and §A.2.
//!
//! The CPI mirrors a BFS tree `q_T` of the query: every query vertex `u`
//! (a CPI *node*) carries a candidate set `u.C ⊆ V(G)`, and for every tree
//! edge `(u.p, u)` the data edges between `u.p.C` and `u.C` are stored as
//! per-candidate adjacency lists `N_u^{u.p}(v)`.
//!
//! Following §A.2, adjacency lists store *positions* (offsets into the
//! child's candidate array) instead of raw vertex ids, so enumeration walks
//! the structure with no hashing. Total size is `O(|E(G)| · |V(q)|)`
//! (Section 4.1) — the paper's replacement for TurboISO's worst-case
//! exponential materialized path embeddings.

mod naive;
mod refine;
mod topdown;

pub use naive::build_naive;

use cfl_graph::{BfsTree, Graph, VertexId};

use crate::config::CpiMode;
use crate::filters::FilterContext;

/// The finalized, immutable compact path-index.
pub struct Cpi {
    /// The BFS tree of the query the index mirrors.
    pub tree: BfsTree,
    /// `candidates[u]` = the candidate set `u.C`, in ascending vertex order.
    candidates: Vec<Vec<VertexId>>,
    /// For non-root `u` with parent `p`: `row_offsets[u]` has length
    /// `|p.C| + 1`, delimiting `row_data[u]` slices per parent candidate.
    row_offsets: Vec<Vec<u32>>,
    /// Positions into `candidates[u]`.
    row_data: Vec<Vec<u32>>,
}

impl Cpi {
    /// Builds the CPI for `ctx.q` over `ctx.g` with BFS tree rooted at
    /// `root`, under the requested construction mode.
    pub fn build(ctx: &FilterContext<'_>, root: VertexId, mode: CpiMode) -> Cpi {
        match mode {
            CpiMode::Naive => naive::build_naive(ctx, root),
            CpiMode::TopDown => {
                let mut scaffold = topdown::top_down(ctx, root);
                scaffold.prune_unreachable();
                scaffold.finalize(ctx.q)
            }
            CpiMode::TopDownRefined => {
                let mut scaffold = topdown::top_down(ctx, root);
                refine::bottom_up(ctx, &mut scaffold);
                scaffold.prune_unreachable();
                scaffold.finalize(ctx.q)
            }
        }
    }

    /// Candidate set of query vertex `u`.
    #[inline]
    pub fn candidates(&self, u: VertexId) -> &[VertexId] {
        &self.candidates[u as usize]
    }

    /// Adjacency list `N_u^{u.p}(v)` where `v` is the parent candidate at
    /// `parent_pos`; entries are positions into `candidates(u)`.
    #[inline]
    pub fn row(&self, u: VertexId, parent_pos: usize) -> &[u32] {
        let offs = &self.row_offsets[u as usize];
        &self.row_data[u as usize][offs[parent_pos] as usize..offs[parent_pos + 1] as usize]
    }

    /// CPI tree parent of `u` (`None` for the root).
    #[inline]
    pub fn parent(&self, u: VertexId) -> Option<VertexId> {
        self.tree.parent(u)
    }

    /// The root query vertex.
    #[inline]
    pub fn root(&self) -> VertexId {
        self.tree.root()
    }

    /// Whether some query vertex ended up with an empty candidate set
    /// (which proves zero embeddings by soundness).
    pub fn has_empty_candidate_set(&self) -> bool {
        self.candidates.iter().any(Vec::is_empty)
    }

    /// Total number of candidate entries over all query vertices.
    pub fn total_candidates(&self) -> u64 {
        self.candidates.iter().map(|c| c.len() as u64).sum()
    }

    /// Total number of adjacency-list entries.
    pub fn total_edges(&self) -> u64 {
        self.row_data.iter().map(|r| r.len() as u64).sum()
    }

    /// Estimated heap footprint in bytes (the index-size metric of
    /// Figure 16(d)).
    pub fn memory_bytes(&self) -> u64 {
        let cand: u64 = self
            .candidates
            .iter()
            .map(|c| (c.len() * std::mem::size_of::<VertexId>()) as u64)
            .sum();
        let offs: u64 = self
            .row_offsets
            .iter()
            .map(|o| (o.len() * std::mem::size_of::<u32>()) as u64)
            .sum();
        let rows: u64 = self
            .row_data
            .iter()
            .map(|r| (r.len() * std::mem::size_of::<u32>()) as u64)
            .sum();
        cand + offs + rows
    }
}

/// Test-only corruption hooks, compiled only with the `validate` feature.
///
/// Each mutator plants one precise structural defect while keeping the
/// index mechanically navigable, so tests can assert that the `cfl-verify`
/// checkers detect exactly the planted violation.
#[cfg(feature = "validate")]
impl Cpi {
    /// Injects `v` into `u.C` (keeping sort order) without linking it to
    /// any adjacency row. Detected as `cand-orphan`, plus a filter
    /// violation when `v` fails the candidate filters. Children's row
    /// offsets gain an empty row so the structure stays navigable.
    pub fn corrupt_inject_candidate(&mut self, u: VertexId, v: VertexId) {
        let Err(pos) = self.candidates[u as usize].binary_search(&v) else {
            return; // already a candidate; nothing to inject
        };
        self.candidates[u as usize].insert(pos, v);
        for p in &mut self.row_data[u as usize] {
            if *p as usize >= pos {
                *p += 1;
            }
        }
        let children: Vec<VertexId> = self.tree.children(u).to_vec();
        for c in children {
            let offs = &mut self.row_offsets[c as usize];
            let at = offs[pos];
            offs.insert(pos + 1, at);
        }
    }

    /// Overwrites the first entry of `u`'s adjacency row for `parent_pos`
    /// with an out-of-range position. Detected as `row-position`.
    ///
    /// # Panics
    /// When the targeted row is empty.
    pub fn corrupt_row_position(&mut self, u: VertexId, parent_pos: usize) {
        let offs = &self.row_offsets[u as usize];
        let (start, end) = (offs[parent_pos] as usize, offs[parent_pos + 1] as usize);
        assert!(start < end, "row must be non-empty to corrupt");
        self.row_data[u as usize][start] = self.candidates[u as usize].len() as u32;
    }

    /// Deletes the last entry of `u`'s adjacency row for `parent_pos`,
    /// silently dropping one CPI edge. Detected as `row-complete`, plus
    /// `cand-orphan` when no other row references the candidate.
    ///
    /// # Panics
    /// When the targeted row is empty.
    pub fn corrupt_drop_row_entry(&mut self, u: VertexId, parent_pos: usize) {
        let offs = &self.row_offsets[u as usize];
        let (start, end) = (offs[parent_pos] as usize, offs[parent_pos + 1] as usize);
        assert!(start < end, "row must be non-empty to corrupt");
        self.row_data[u as usize].remove(end - 1);
        for o in &mut self.row_offsets[u as usize][parent_pos + 1..] {
            *o -= 1;
        }
    }
}

/// Mutable CPI under construction: candidates carry alive flags and
/// adjacency rows store raw vertex ids. [`CpiScaffold::finalize`] compacts
/// to the position-based representation, dropping pruned candidates and
/// dangling adjacency entries.
pub(crate) struct CpiScaffold {
    pub tree: BfsTree,
    /// Per query vertex: candidate vertex ids (construction order; sorted at
    /// finalize time).
    pub candidates: Vec<Vec<VertexId>>,
    /// Parallel alive flags (bottom-up refinement prunes by flipping these).
    pub alive: Vec<Vec<bool>>,
    /// For non-root `u`: `rows[u][i]` = data vertices of `candidates[u]`
    /// adjacent to the parent's `i`-th candidate.
    pub rows: Vec<Vec<Vec<VertexId>>>,
}

impl CpiScaffold {
    pub(crate) fn new(tree: BfsTree, n: usize) -> Self {
        CpiScaffold {
            tree,
            candidates: vec![Vec::new(); n],
            alive: vec![Vec::new(); n],
            rows: vec![Vec::new(); n],
        }
    }

    /// Iterator over the alive candidates of `u`.
    pub(crate) fn alive_candidates<'a>(
        &'a self,
        u: VertexId,
    ) -> impl Iterator<Item = VertexId> + 'a {
        self.candidates[u as usize]
            .iter()
            .zip(&self.alive[u as usize])
            .filter_map(|(&v, &a)| a.then_some(v))
    }

    /// Algorithm 4's top-down adjacency-list pruning (lines 8–11): kills
    /// every non-root candidate that no surviving parent candidate links
    /// to. A single bottom-up pass can leave such *orphans* behind — a
    /// candidate's referencing parent candidates may all die for reasons in
    /// sibling subtrees after the candidate itself was processed. Orphans
    /// are unreachable during enumeration (candidates are only ever entered
    /// through parent adjacency rows), so removing them shrinks the index
    /// without changing results. Processing in BFS order cascades the
    /// pruning down the tree.
    ///
    /// Safety of the sweep: a candidate kept here is referenced by an alive
    /// parent candidate, so removing orphans never deletes the downward
    /// support (Lemma 5.1) of any surviving candidate along tree edges.
    pub(crate) fn prune_unreachable(&mut self) {
        let order: Vec<VertexId> = self.tree.order().collect();
        for &u in &order {
            let Some(p) = self.tree.parent(u) else {
                continue;
            };
            // Data vertices referenced by some alive parent candidate's row.
            let mut referenced: Vec<VertexId> = Vec::new();
            for (i, &alive) in self.alive[p as usize].iter().enumerate() {
                if !alive {
                    continue;
                }
                if let Some(row) = self.rows[u as usize].get(i) {
                    referenced.extend_from_slice(row);
                }
            }
            referenced.sort_unstable();
            referenced.dedup();
            let cands = &self.candidates[u as usize];
            let alive_u = &mut self.alive[u as usize];
            for (j, &v) in cands.iter().enumerate() {
                if alive_u[j] && referenced.binary_search(&v).is_err() {
                    alive_u[j] = false;
                }
            }
        }
    }

    /// Compacts into the final position-based [`Cpi`].
    pub(crate) fn finalize(self, q: &Graph) -> Cpi {
        let n = q.num_vertices();
        // Sort alive candidates per vertex and build per-data-vertex position
        // lookups lazily with a scratch map (queries are processed one vertex
        // at a time, so one scratch map suffices).
        let mut final_cands: Vec<Vec<VertexId>> = Vec::with_capacity(n);
        for u in 0..n {
            let mut c: Vec<VertexId> = self.candidates[u]
                .iter()
                .zip(&self.alive[u])
                .filter_map(|(&v, &a)| a.then_some(v))
                .collect();
            c.sort_unstable();
            final_cands.push(c);
        }

        let mut row_offsets: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut row_data: Vec<Vec<u32>> = vec![Vec::new(); n];
        for u in 0..n as VertexId {
            let Some(parent) = self.tree.parent(u) else {
                continue;
            };
            let parent = parent as usize;
            let child_c = &final_cands[u as usize];
            // Rows are indexed by the *original* parent candidate order;
            // re-emit them in the final (sorted, alive-only) parent order.
            let orig_parent = &self.candidates[parent];
            let parent_alive = &self.alive[parent];
            // Map original parent index -> row, then emit in sorted order of
            // alive parent candidates.
            let mut order: Vec<usize> = (0..orig_parent.len())
                .filter(|&i| parent_alive[i])
                .collect();
            order.sort_unstable_by_key(|&i| orig_parent[i]);
            debug_assert_eq!(order.len(), final_cands[parent].len());

            let mut offsets = Vec::with_capacity(order.len() + 1);
            let mut data: Vec<u32> = Vec::new();
            offsets.push(0u32);
            let empty: Vec<VertexId> = Vec::new();
            for &i in &order {
                let row = self.rows[u as usize].get(i).unwrap_or(&empty);
                for &v in row {
                    if let Ok(pos) = child_c.binary_search(&v) {
                        data.push(pos as u32);
                    }
                }
                offsets.push(data.len() as u32);
            }
            row_offsets[u as usize] = offsets;
            row_data[u as usize] = data;
        }

        Cpi {
            tree: self.tree,
            candidates: final_cands,
            row_offsets,
            row_data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CpiMode;
    use crate::filters::{FilterContext, GraphStats};
    use cfl_graph::graph_from_edges;

    /// Paper Figure 7: query 0(A)-1(B), 0-2(C), 1-2, 1-3(D), 2-3 over the
    /// Figure 7(c) data graph.
    fn figure7() -> (Graph, Graph) {
        let q = graph_from_edges(&[0, 1, 2, 3], &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]).unwrap();
        // Data graph of Figure 7(c): labels A=0,B=1,C=2,D=3.
        // v1,v2: A. v3,v5,v7,v9: B. v4,v6,v8,v10: C. v11..v15: D (v13,v15 D too).
        // Edges per the figure:
        // v1-v3, v1-v5, v1-v7, v2-v7, v2-v9,
        // v3-v4, v5-v6, v7-v8, v9-v10 (B-C pairs), v1-v4?, ...
        // The exact figure edges are reproduced in the doc tests of the
        // engine; here a faithful subset suffices to exercise construction.
        let labels = [0, 0, 1, 2, 1, 2, 1, 2, 1, 2, 9, 3, 3, 3, 3, 3];
        //            v1 v2 v3 v4 v5 v6 v7 v8 v9 v10 pad v11..v15 (0-indexed shift)
        let _ = labels;
        let g = graph_from_edges(
            &[0, 0, 1, 2, 1, 2, 1, 2, 1, 2, 2, 3, 3, 3],
            &[
                (0, 2), // v1-B
                (0, 4),
                (0, 6),
                (1, 6),
                (1, 8),
                (2, 3), // B-C
                (4, 5),
                (6, 7),
                (8, 9),
                (0, 3), // A-C links so u2 candidates connect to u0
                (1, 9),
                (3, 11), // C-D
                (5, 12),
                (7, 13),
                (2, 11), // B-D
                (4, 12),
                (6, 13),
            ],
        )
        .unwrap();
        (q, g)
    }

    fn build(q: &Graph, g: &Graph, mode: CpiMode) -> Cpi {
        let qs = GraphStats::build(q);
        let gs = GraphStats::build(g);
        let ctx = FilterContext::new(q, g, &qs, &gs);
        Cpi::build(&ctx, 0, mode)
    }

    #[test]
    fn refined_cpi_is_subset_of_topdown_which_is_subset_of_naive() {
        let (q, g) = figure7();
        let naive = build(&q, &g, CpiMode::Naive);
        let td = build(&q, &g, CpiMode::TopDown);
        let full = build(&q, &g, CpiMode::TopDownRefined);
        for u in q.vertices() {
            let nv = naive.candidates(u);
            let tv = td.candidates(u);
            let fv = full.candidates(u);
            assert!(tv.iter().all(|v| nv.contains(v)), "u{u}: td ⊄ naive");
            assert!(fv.iter().all(|v| tv.contains(v)), "u{u}: full ⊄ td");
        }
        assert!(full.total_candidates() <= td.total_candidates());
        assert!(td.total_candidates() <= naive.total_candidates());
    }

    #[test]
    fn rows_reference_valid_positions() {
        let (q, g) = figure7();
        for mode in [CpiMode::Naive, CpiMode::TopDown, CpiMode::TopDownRefined] {
            let cpi = build(&q, &g, mode);
            for u in q.vertices() {
                if cpi.parent(u).is_none() {
                    continue;
                }
                let p = cpi.parent(u).unwrap();
                for i in 0..cpi.candidates(p).len() {
                    for &pos in cpi.row(u, i) {
                        assert!((pos as usize) < cpi.candidates(u).len());
                        // Row entries must be real data edges.
                        let vp = cpi.candidates(p)[i];
                        let vc = cpi.candidates(u)[pos as usize];
                        assert!(g.has_edge(vp, vc), "mode {mode:?}: ({vp},{vc})");
                    }
                }
            }
        }
    }

    #[test]
    fn size_metrics_are_consistent() {
        let (q, g) = figure7();
        let cpi = build(&q, &g, CpiMode::TopDownRefined);
        assert!(cpi.total_candidates() > 0);
        assert!(cpi.memory_bytes() >= cpi.total_candidates() * 4);
        assert!(!cpi.has_empty_candidate_set());
    }

    #[test]
    fn impossible_query_yields_empty_candidates() {
        // Query label 7 does not exist in the data graph.
        let q = graph_from_edges(&[7, 1], &[(0, 1)]).unwrap();
        let g = graph_from_edges(&[0, 1], &[(0, 1)]).unwrap();
        let cpi = build(&q, &g, CpiMode::TopDownRefined);
        assert!(cpi.has_empty_candidate_set());
    }
}
