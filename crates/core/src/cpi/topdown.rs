//! Top-down CPI construction — Algorithm 3, level-synchronous.
//!
//! Query vertices are processed level by level down the BFS tree; within a
//! level the work runs as independent per-vertex tasks on the build worker
//! pool ([`crate::pool`]), with a barrier between three phases:
//!
//! 1. **Forward candidate generation** (lines 5–17): `C(u)` is the set of
//!    data vertices passing the label/degree and CandVerify filters that
//!    have a neighbor in `C(w)` for *every* upper-level query neighbor `w`
//!    (the BFS parent and upward C-NTE endpoints). Upper-level sets were
//!    finalized by the previous level iteration, so these tasks are
//!    independent. Lemma 5.1's per-vertex counter array is replaced by
//!    neighborhood bitset masks: the initial list comes from the smallest
//!    upper set's neighborhood, and every further constraint is one
//!    bit-test per surviving entry.
//! 2. **Same-level S-NTE pruning** (the interleaving of lines 5–17 with
//!    the backward pass of lines 18–23; serial): a forward sweep prunes
//!    each vertex against its *earlier* same-level neighbors and a reverse
//!    sweep against its *later* ones. Sweeping in index order reproduces
//!    exactly the candidate-set states the sequential algorithm observes —
//!    the forward sweep sees each earlier set with its own earlier-neighbor
//!    constraints already applied, and the reverse sweep sees each later
//!    set fully pruned — so the resulting sets are identical to the
//!    interleaved original's. The sweep is skipped outright for levels
//!    without same-level edges, the common case. (CandVerify commutes with
//!    all of this: it is a pure per-`(v, u)` predicate.)
//! 3. **Adjacency-list construction** (lines 24–28): one membership bitset
//!    over `C(u)`, then each parent candidate's row is its CSR neighbor
//!    slice filtered through the shared intersection kernel
//!    ([`cfl_graph::intersect`]) into a per-vertex flat row block — two
//!    allocations per query vertex instead of one per parent candidate.
//!
//! Candidate sets are kept in strictly ascending vertex order from the
//! start (the ordering invariant the frozen arenas document), and total
//! work remains `O(|E(G)| · |E(q)|)` (Theorem 5.1).

use cfl_graph::intersect::{intersect_with_set, retain_in_set};
use cfl_graph::{BfsTree, FixedBitSet, VertexId};

use super::scratch::with_scratch;
use super::{CpiBuilder, FlatRows};
use crate::filters::FilterContext;
use crate::pool::parallel_map;

/// Runs Algorithm 3 serially.
#[cfg(any(test, feature = "oracle"))]
pub(crate) fn top_down(ctx: &FilterContext<'_>, root: VertexId) -> CpiBuilder {
    top_down_with(ctx, root, 1)
}

/// Runs Algorithm 3 with per-level parallelism across up to `threads`
/// participants, computing the root candidate set itself (lines 1–2).
pub(crate) fn top_down_with(ctx: &FilterContext<'_>, root: VertexId, threads: usize) -> CpiBuilder {
    let mut root_cands: Vec<VertexId> = ctx.light_candidates(root).collect();
    // When tracing, the root's light candidates count as seeded and
    // CandVerify kills are attributed per stage; `top_down_seeded` below
    // must then *not* seed-count the already-filtered list again.
    ctx.rec(cfl_trace::BuildCounter::Seeded, root_cands.len() as u64);
    ctx.retain_verified(&mut root_cands, root);
    root_cands.sort_unstable();
    top_down_seeded_inner(ctx, root, root_cands, threads, false)
}

/// Runs Algorithm 3 from a pre-verified root candidate set (strictly
/// ascending — typically the list root selection already refined, see
/// [`crate::root::select_root_with_candidates`]). The builder contents
/// are identical for every thread count: each phase's tasks read only
/// state finalized before the phase began, and results are committed in
/// vertex order.
pub(crate) fn top_down_seeded(
    ctx: &FilterContext<'_>,
    root: VertexId,
    root_cands: Vec<VertexId>,
    threads: usize,
) -> CpiBuilder {
    top_down_seeded_inner(ctx, root, root_cands, threads, true)
}

/// `count_root_seed` distinguishes the externally-seeded entry point
/// (the pre-verified root list counts as seeded with zero kills — its
/// filtering happened during root selection) from [`top_down_with`],
/// which already recorded the root's seed count and kills itself.
fn top_down_seeded_inner(
    ctx: &FilterContext<'_>,
    root: VertexId,
    root_cands: Vec<VertexId>,
    threads: usize,
    count_root_seed: bool,
) -> CpiBuilder {
    if count_root_seed {
        ctx.rec(cfl_trace::BuildCounter::Seeded, root_cands.len() as u64);
    }
    let q = ctx.q;
    let n = q.num_vertices();
    let tree = BfsTree::new(q, root);
    debug_assert_eq!(tree.num_reached(), n, "query must be connected");
    let mut s = CpiBuilder::new(tree, n);

    debug_assert!(root_cands.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(root_cands.iter().all(|&v| ctx.is_candidate(v, root)));
    s.candidates[root as usize] = root_cands;

    let num_levels = s.tree.num_levels();
    for lev in 2..=num_levels {
        let vlev: Vec<VertexId> = s.tree.level_vertices(lev).to_vec();

        // Phase 1: forward generation against upper-level sets only.
        let generated: Vec<Vec<VertexId>> = parallel_map(threads, vlev.len(), |idx| {
            generate_candidates(ctx, &s, vlev[idx])
        });
        for (&u, cands) in vlev.iter().zip(generated) {
            s.candidates[u as usize] = cands;
        }

        // Phase 2: same-level S-NTE constraints, both directions.
        same_level_prune(ctx, &mut s, &vlev);

        // Phase 3: adjacency rows along the tree edge from the parent.
        let built: Vec<FlatRows> =
            parallel_map(threads, vlev.len(), |idx| build_rows(ctx, &s, vlev[idx]));
        for (&u, rows) in vlev.iter().zip(built) {
            s.rows[u as usize] = rows;
        }
    }

    for u in 0..n {
        s.alive[u] = vec![true; s.candidates[u].len()];
    }
    // Every surviving candidate passes the full local filter battery
    // (label, degree, MND, NLF) and every candidate list is strictly
    // ascending — the cheap halves of the checks cfl-verify replays in
    // full.
    debug_assert!((0..n).all(|u| s.candidates[u]
        .iter()
        .all(|&v| ctx.is_candidate(v, u as VertexId))));
    debug_assert!((0..n).all(|u| s.candidates[u].windows(2).all(|w| w[0] < w[1])));
    s
}

/// Phase 1 task: the candidate set of `u` constrained by every
/// *upper-level* query neighbor (finalized in earlier level iterations),
/// the label/degree filter, and CandVerify. Returns a strictly ascending
/// list.
fn generate_candidates(ctx: &FilterContext<'_>, s: &CpiBuilder, u: VertexId) -> Vec<VertexId> {
    ctx.reset_kernel_tally();
    let q = ctx.q;
    let g = ctx.g;
    let lev = s.tree.level(u);
    // The upper-level neighbors (BFS parent and upward C-NTE endpoints)
    // come straight off the CSR slice — no collection — and the one with
    // the smallest finalized candidate set seeds the list.
    let mut seed_w: Option<VertexId> = None;
    for &w in q.neighbors(u) {
        if s.tree.level(w) < lev
            && seed_w
                .is_none_or(|sw| s.candidates[w as usize].len() < s.candidates[sw as usize].len())
        {
            seed_w = Some(w);
        }
    }
    let Some(seed_w) = seed_w else {
        unreachable!("every non-root vertex has a visited BFS parent");
    };

    let adj = &ctx.g_stats.label_adj;
    let lu = q.label(u);
    let du = q.degree(u);
    let mut list: Vec<VertexId> = Vec::new();
    with_scratch(g.num_vertices(), |scr| {
        // Seed list: distinct degree-qualified neighbors of the smallest
        // upper candidate set — every further constraint can only shrink
        // it, so seeding from the smallest bounds the whole task. The
        // label-grouped adjacency serves only the `l_q(u)`-labeled
        // neighbors, so the label filter costs nothing and the scan skips
        // the (vast majority of) wrong-label neighbors outright. Only
        // qualifying vertices enter the dedup mask; its set bits then
        // equal `list` exactly, making the restore O(|list|).
        for &vp in &s.candidates[seed_w as usize] {
            for &v in adj.neighbors_with_label(vp, lu) {
                if !scr.seen.contains(v) && g.degree(v) >= du {
                    scr.seen.insert(v);
                    list.push(v);
                }
            }
        }
        scr.seen.remove_all(&list);
        ctx.rec(cfl_trace::BuildCounter::Seeded, list.len() as u64);

        for &w in q.neighbors(u) {
            if w == seed_w || s.tree.level(w) >= lev || list.is_empty() {
                continue;
            }
            neighborhood_mask(adj, &s.candidates[w as usize], lu, &mut scr.mask);
            let before = list.len();
            retain_in_set(&mut list, &scr.mask);
            ctx.rec(
                cfl_trace::BuildCounter::AdjacencyKills,
                (before - list.len()) as u64,
            );
            scr.mask.clear();
        }
    });

    // CandVerify last: MND + NLF are the expensive filters, so they only
    // run on vertices that already satisfy every adjacency constraint.
    ctx.retain_verified(&mut list, u);
    list.sort_unstable();
    ctx.rec_kernel_tally();
    list
}

/// Phase 2: applies same-level (S-NTE) constraints serially — a forward
/// sweep pruning each vertex against its earlier same-level neighbors,
/// then a reverse sweep against its later ones (Algorithm 3's backward
/// pass). No-op for levels without same-level edges.
fn same_level_prune(ctx: &FilterContext<'_>, s: &mut CpiBuilder, vlev: &[VertexId]) {
    let q = ctx.q;
    let Some(&first) = vlev.first() else {
        return;
    };
    let lev = s.tree.level(first);
    let has_snte = vlev
        .iter()
        .any(|&u| q.neighbors(u).iter().any(|&w| s.tree.level(w) == lev));
    if !has_snte {
        return;
    }
    ctx.reset_kernel_tally();
    let adj = &ctx.g_stats.label_adj;
    with_scratch(ctx.g.num_vertices(), |scr| {
        // Pass 0 walks forward constraining against earlier same-level
        // neighbors; pass 1 walks backward constraining against later ones.
        for pass in 0..2 {
            for step in 0..vlev.len() {
                let idx = if pass == 0 {
                    step
                } else {
                    vlev.len() - 1 - step
                };
                let u = vlev[idx];
                for ni in 0..q.neighbors(u).len() {
                    let w = q.neighbors(u)[ni];
                    if s.tree.level(w) != lev {
                        continue;
                    }
                    let Some(widx) = vlev.iter().position(|&x| x == w) else {
                        continue;
                    };
                    if (pass == 0) != (widx < idx) {
                        continue;
                    }
                    neighborhood_mask(adj, &s.candidates[w as usize], q.label(u), &mut scr.mask);
                    let before = s.candidates[u as usize].len();
                    retain_in_set(&mut s.candidates[u as usize], &scr.mask);
                    ctx.rec(
                        cfl_trace::BuildCounter::SnteKills,
                        (before - s.candidates[u as usize].len()) as u64,
                    );
                    scr.mask.clear();
                }
            }
        }
    });
    ctx.rec_kernel_tally();
}

/// Phase 3 task: the adjacency rows of `u` along its tree edge — for each
/// parent candidate `v_p` (in candidate order), `N(v_p) ∩ C(u)`. The
/// membership bitset over `C(u)` is built once and probed per parent
/// candidate, so each row costs one bit-test per CSR neighbor; the label
/// test of the nested builder is subsumed because `C(u)` only contains
/// vertices labeled `l_q(u)`. Rows inherit the CSR slices' ascending
/// order.
fn build_rows(ctx: &FilterContext<'_>, s: &CpiBuilder, u: VertexId) -> FlatRows {
    ctx.reset_kernel_tally();
    let g = ctx.g;
    let ui = u as usize;
    let Some(p) = s.tree.parent(u) else {
        unreachable!("level ≥ 2 vertices are never the root");
    };
    let adj = &ctx.g_stats.label_adj;
    let lu = ctx.q.label(u);
    let parent_cands = &s.candidates[p as usize];
    let mut rows = FlatRows::default();
    rows.ends.reserve(parent_cands.len());
    with_scratch(g.num_vertices(), |scr| {
        scr.mask.insert_all(&s.candidates[ui]);
        for &vp in parent_cands {
            // C(u) holds only `l_q(u)`-labeled vertices, so intersecting
            // the label-restricted slice is exact and touches a fraction
            // of the CSR row.
            intersect_with_set(adj.neighbors_with_label(vp, lu), &scr.mask, &mut rows.data);
            rows.close_row();
        }
        // The mask holds exactly C(u): restore it by key, not by memset.
        scr.mask.remove_all(&s.candidates[ui]);
    });
    ctx.rec_kernel_tally();
    rows
}

/// Unions the `label`-restricted neighborhoods of `cands` into `mask` —
/// the `N(C(w))` membership structure every adjacency constraint tests
/// against. The mask only ever gates vertices carrying `label` (the
/// candidate label of the query vertex under construction), so the
/// wrong-label neighbors the full CSR slices would contribute are dead
/// weight the grouped adjacency never loads.
#[inline]
fn neighborhood_mask(
    adj: &cfl_graph::LabelAdjacency,
    cands: &[VertexId],
    label: cfl_graph::Label,
    mask: &mut FixedBitSet,
) {
    for &vp in cands {
        mask.insert_all(adj.neighbors_with_label(vp, label));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CpiMode;
    use crate::cpi::Cpi;
    use crate::filters::GraphStats;
    use cfl_graph::{graph_from_edges, Graph};

    fn build_td(q: &Graph, g: &Graph, root: u32) -> Cpi {
        let qs = GraphStats::build(q);
        let gs = GraphStats::build(g);
        let ctx = FilterContext::new(q, g, &qs, &gs);
        Cpi::build(&ctx, root, CpiMode::TopDown)
    }

    /// Example 5.1 (Figure 7). Query: u0(A)–u1(B), u0–u2(C), u1–u2 (S-NTE),
    /// u1–u3(D), u2–u3 (C-NTE). Data graph of Figure 7(c), re-indexed from 0:
    /// v1..v15 → 0..14.
    fn figure7_graphs() -> (Graph, Graph) {
        let q = graph_from_edges(&[0, 1, 2, 3], &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]).unwrap();
        // Labels: A=0 B=1 C=2 D=3.
        // v1(0):A v2(1):A v3(2):B v4(3):C v5(4):B v6(5):C v7(6):B v8(7):C
        // v9(8):B v10(9):B v11(10):C v12(11):D v13(12):D v14(13):D v15(14):D
        // Edges chosen to realize Example 5.1's candidate sets:
        //   u0.C = {v1, v2}
        //   u1.C forward = {v3, v5, v7, v9}; v9 pruned backward (no nbr in u2.C)
        //   u2.C forward = {v4, v6, v8}; v10 fails CandVerify (no D neighbor)
        //   u3.C = {v11, v12} (=ids 11,12? no — v11 is C) … u3.C = {v12, v13}
        let g = graph_from_edges(
            &[0, 0, 1, 2, 1, 2, 1, 2, 1, 1, 2, 3, 3, 3, 3],
            &[
                // A–B edges: v1–v3, v1–v5, v1–v7, v2–v7, v2–v9
                (0, 2),
                (0, 4),
                (0, 6),
                (1, 6),
                (1, 8),
                // A–C edges: v1–v4, v1–v6, v2–v8, v2–v10(label B? no v10=9 is B)
                (0, 3),
                (0, 5),
                (1, 7),
                // B–C edges (u1–u2 S-NTE support): v3–v4, v5–v6, v7–v8
                (2, 3),
                (4, 5),
                (6, 7),
                // B–D edges (u1–u3): v3–v12, v5–v12, v7–v13
                (2, 11),
                (4, 11),
                (6, 12),
                // C–D edges (u2–u3): v4–v12, v6–v12, v8–v13
                (3, 11),
                (5, 11),
                (7, 12),
                // v10(9, label B) attached to v2 and to a C (v11=10) that has
                // no D neighbor, so v10 survives label/degree but its C
                // partner v11 never helps; v9(8) attached only to v2 with a
                // C? give v9 a C neighbor with no D: v9–v11.
                (1, 9),
                (8, 10),
                (9, 10),
            ],
        )
        .unwrap();
        (q, g)
    }

    #[test]
    fn example51_candidate_sets() {
        let (q, g) = figure7_graphs();
        let cpi = build_td(&q, &g, 0);
        assert_eq!(cpi.candidates(0), &[0, 1]); // u0.C = {v1, v2}
                                                // u1.C: forward gives B-neighbors of {v1,v2} = {v3,v5,v7,v9,v10};
                                                // NLF (CandVerify) requires a C and a D neighbor: v9(8) has C nbr
                                                // v11(10) but no D ⇒ NLF on D fails; v10(9) likewise.
        assert_eq!(cpi.candidates(1), &[2, 4, 6]);
        // u2.C: C-neighbors of u0.C ∩ C-neighbors of u1.C with D nbr.
        assert_eq!(cpi.candidates(2), &[3, 5, 7]);
        // u3.C: D vertices adjacent to a u1 candidate and a u2 candidate.
        assert_eq!(cpi.candidates(3), &[11, 12]);
    }

    #[test]
    fn rows_follow_tree_edges() {
        let (q, g) = figure7_graphs();
        let cpi = build_td(&q, &g, 0);
        // Parent of u1 is u0. Row of v1 (pos 0 in u0.C) must list u1
        // candidates adjacent to v1: v3(2), v5(4), v7(6) → positions 0,1,2.
        let row = cpi.row(1, 0);
        let verts: Vec<u32> = row.iter().map(|&p| cpi.candidates(1)[p as usize]).collect();
        assert_eq!(verts, vec![2, 4, 6]);
        // Row of v2 (pos 1): only v7(6).
        let row = cpi.row(1, 1);
        let verts: Vec<u32> = row.iter().map(|&p| cpi.candidates(1)[p as usize]).collect();
        assert_eq!(verts, vec![6]);
    }

    #[test]
    fn soundness_on_small_graph() {
        // Build a query that embeds at a known place and check every mapped
        // vertex is a candidate (Lemma 5.2).
        let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let g = graph_from_edges(
            &[0, 1, 2, 0, 1, 2],
            &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)],
        )
        .unwrap();
        let cpi = build_td(&q, &g, 0);
        // Embeddings: (0,1,2) and (3,4,5).
        assert!(cpi.candidates(0).contains(&0) && cpi.candidates(0).contains(&3));
        assert!(cpi.candidates(1).contains(&1) && cpi.candidates(1).contains(&4));
        assert!(cpi.candidates(2).contains(&2) && cpi.candidates(2).contains(&5));
    }

    #[test]
    fn parallel_threads_produce_identical_builders() {
        let (q, g) = figure7_graphs();
        let qs = GraphStats::build(&q);
        let gs = GraphStats::build(&g);
        let ctx = FilterContext::new(&q, &g, &qs, &gs);
        let serial = top_down(&ctx, 0);
        for threads in 2..=8 {
            let par = top_down_with(&ctx, 0, threads);
            assert_eq!(par.candidates, serial.candidates, "{threads} threads");
            for u in q.vertices() {
                let ui = u as usize;
                assert_eq!(
                    par.rows[ui].data, serial.rows[ui].data,
                    "{threads} threads, u{u} row data"
                );
                assert_eq!(
                    par.rows[ui].ends, serial.rows[ui].ends,
                    "{threads} threads, u{u} row ends"
                );
            }
        }
    }
}
