//! Top-down CPI construction — Algorithm 3.
//!
//! Query vertices are processed level-by-level down the BFS tree. For each
//! level: (1) *forward candidate generation* intersects, for every vertex
//! `u`, the label/degree-filtered neighborhoods of the candidate sets of
//! `u`'s already-visited query neighbors (tree parents, upper C-NTE
//! endpoints, and earlier same-level S-NTE endpoints), via the counter
//! scheme of Lemma 5.1; (2) *backward candidate pruning* re-applies the
//! counters against the later same-level S-NTE endpoints in reverse order;
//! (3) *adjacency list construction* materializes `N_u^{u.p}(v)` for the
//! tree edge to the parent. Total time `O(|E(G)| · |E(q)|)` (Theorem 5.1).

use cfl_graph::{BfsTree, Graph, VertexId};

use super::CpiBuilder;
use crate::filters::FilterContext;

/// Counter pass of Lemma 5.1 (Algorithm 3, lines 11–13): for every data
/// vertex `v` with label `l_q(u)` and degree ≥ `d_q(u)` adjacent to some
/// candidate in `parent_cands`, increment `cnt[v]` iff `cnt[v] == target`.
/// Vertices touched at target 0 are recorded so counters can be reset in
/// time proportional to the touched set.
fn count_pass(
    g: &Graph,
    q: &Graph,
    u: VertexId,
    parent_cands: &[VertexId],
    cnt: &mut [u32],
    touched: &mut Vec<VertexId>,
    target: u32,
) {
    let lu = q.label(u);
    let du = q.degree(u);
    for &vp in parent_cands {
        for &v in g.neighbors(vp) {
            if g.label(v) == lu && g.degree(v) >= du && cnt[v as usize] == target {
                if target == 0 {
                    touched.push(v);
                }
                cnt[v as usize] += 1;
            }
        }
    }
}

#[inline]
fn reset(cnt: &mut [u32], touched: &mut Vec<VertexId>) {
    for &v in touched.iter() {
        cnt[v as usize] = 0;
    }
    touched.clear();
}

/// Runs Algorithm 3, producing a builder whose candidates are all alive.
pub(crate) fn top_down(ctx: &FilterContext<'_>, root: VertexId) -> CpiBuilder {
    let q = ctx.q;
    let g = ctx.g;
    let n = q.num_vertices();
    let tree = BfsTree::new(q, root);
    debug_assert_eq!(tree.num_reached(), n, "query must be connected");
    let mut s = CpiBuilder::new(tree, n);

    // Root candidates (lines 1–2).
    for v in ctx.light_candidates(root) {
        if ctx.cand_verify(v, root) {
            s.candidates[root as usize].push(v);
        }
    }

    let mut visited = vec![false; n];
    visited[root as usize] = true;
    let mut cnt = vec![0u32; g.num_vertices()];
    let mut touched: Vec<VertexId> = Vec::new();
    let mut member = vec![false; g.num_vertices()];

    let num_levels = s.tree.num_levels();
    for lev in 2..=num_levels {
        let vlev: Vec<VertexId> = s.tree.level_vertices(lev).to_vec();

        // --- Forward candidate generation (lines 5–17) ---
        let mut un: Vec<Vec<VertexId>> = vec![Vec::new(); vlev.len()];
        for (idx, &u) in vlev.iter().enumerate() {
            let mut target = 0u32;
            for &w in q.neighbors(u) {
                if visited[w as usize] {
                    count_pass(
                        g,
                        q,
                        u,
                        &s.candidates[w as usize],
                        &mut cnt,
                        &mut touched,
                        target,
                    );
                    target += 1;
                } else if s.tree.level(w) == s.tree.level(u) {
                    // Unvisited same-level neighbor: S-NTE, deferred to the
                    // backward pass.
                    un[idx].push(w);
                }
                // Unvisited lower-level neighbors (tree children / downward
                // C-NTEs) are exploited by the bottom-up refinement.
            }
            debug_assert!(
                target >= 1,
                "every non-root vertex has a visited BFS parent"
            );
            for &v in &touched {
                if cnt[v as usize] == target && ctx.cand_verify(v, u) {
                    s.candidates[u as usize].push(v);
                }
            }
            reset(&mut cnt, &mut touched);
            visited[u as usize] = true;
        }

        // --- Backward candidate pruning (lines 18–23) ---
        for (idx, &u) in vlev.iter().enumerate().rev() {
            if un[idx].is_empty() {
                continue;
            }
            let mut target = 0u32;
            for &w in &un[idx] {
                count_pass(
                    g,
                    q,
                    u,
                    &s.candidates[w as usize],
                    &mut cnt,
                    &mut touched,
                    target,
                );
                target += 1;
            }
            s.candidates[u as usize].retain(|&v| cnt[v as usize] == target);
            reset(&mut cnt, &mut touched);
        }

        // --- Adjacency list construction (lines 24–28) ---
        for &u in &vlev {
            let Some(p) = s.tree.parent(u) else {
                unreachable!("level ≥ 2 vertices are never the root");
            };
            let p = p as usize;
            for &v in &s.candidates[u as usize] {
                member[v as usize] = true;
            }
            let lu = q.label(u);
            let mut rows = Vec::with_capacity(s.candidates[p].len());
            for &vp in &s.candidates[p] {
                let row: Vec<VertexId> = g
                    .neighbors(vp)
                    .iter()
                    .copied()
                    .filter(|&v| g.label(v) == lu && member[v as usize])
                    .collect();
                rows.push(row);
            }
            s.rows[u as usize] = rows;
            for &v in &s.candidates[u as usize] {
                member[v as usize] = false;
            }
        }
    }

    for u in 0..n {
        s.alive[u] = vec![true; s.candidates[u].len()];
    }
    // Every surviving candidate passes the full local filter battery
    // (label, degree, MND, NLF) — the cheap half of the checks cfl-verify
    // replays in full.
    debug_assert!((0..n).all(|u| s.candidates[u]
        .iter()
        .all(|&v| ctx.is_candidate(v, u as VertexId))));
    s
}

#[cfg(test)]
mod tests {
    use crate::config::CpiMode;
    use crate::cpi::Cpi;
    use crate::filters::{FilterContext, GraphStats};
    use cfl_graph::{graph_from_edges, Graph};

    fn build_td(q: &Graph, g: &Graph, root: u32) -> Cpi {
        let qs = GraphStats::build(q);
        let gs = GraphStats::build(g);
        let ctx = FilterContext::new(q, g, &qs, &gs);
        Cpi::build(&ctx, root, CpiMode::TopDown)
    }

    /// Example 5.1 (Figure 7). Query: u0(A)–u1(B), u0–u2(C), u1–u2 (S-NTE),
    /// u1–u3(D), u2–u3 (C-NTE). Data graph of Figure 7(c), re-indexed from 0:
    /// v1..v15 → 0..14.
    fn figure7_graphs() -> (Graph, Graph) {
        let q = graph_from_edges(&[0, 1, 2, 3], &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]).unwrap();
        // Labels: A=0 B=1 C=2 D=3.
        // v1(0):A v2(1):A v3(2):B v4(3):C v5(4):B v6(5):C v7(6):B v8(7):C
        // v9(8):B v10(9):B v11(10):C v12(11):D v13(12):D v14(13):D v15(14):D
        // Edges chosen to realize Example 5.1's candidate sets:
        //   u0.C = {v1, v2}
        //   u1.C forward = {v3, v5, v7, v9}; v9 pruned backward (no nbr in u2.C)
        //   u2.C forward = {v4, v6, v8}; v10 fails CandVerify (no D neighbor)
        //   u3.C = {v11, v12} (=ids 11,12? no — v11 is C) … u3.C = {v12, v13}
        let g = graph_from_edges(
            &[0, 0, 1, 2, 1, 2, 1, 2, 1, 1, 2, 3, 3, 3, 3],
            &[
                // A–B edges: v1–v3, v1–v5, v1–v7, v2–v7, v2–v9
                (0, 2),
                (0, 4),
                (0, 6),
                (1, 6),
                (1, 8),
                // A–C edges: v1–v4, v1–v6, v2–v8, v2–v10(label B? no v10=9 is B)
                (0, 3),
                (0, 5),
                (1, 7),
                // B–C edges (u1–u2 S-NTE support): v3–v4, v5–v6, v7–v8
                (2, 3),
                (4, 5),
                (6, 7),
                // B–D edges (u1–u3): v3–v12, v5–v12, v7–v13
                (2, 11),
                (4, 11),
                (6, 12),
                // C–D edges (u2–u3): v4–v12, v6–v12, v8–v13
                (3, 11),
                (5, 11),
                (7, 12),
                // v10(9, label B) attached to v2 and to a C (v11=10) that has
                // no D neighbor, so v10 survives label/degree but its C
                // partner v11 never helps; v9(8) attached only to v2 with a
                // C? give v9 a C neighbor with no D: v9–v11.
                (1, 9),
                (8, 10),
                (9, 10),
            ],
        )
        .unwrap();
        (q, g)
    }

    #[test]
    fn example51_candidate_sets() {
        let (q, g) = figure7_graphs();
        let cpi = build_td(&q, &g, 0);
        assert_eq!(cpi.candidates(0), &[0, 1]); // u0.C = {v1, v2}
                                                // u1.C: forward gives B-neighbors of {v1,v2} = {v3,v5,v7,v9,v10};
                                                // NLF (CandVerify) requires a C and a D neighbor: v9(8) has C nbr
                                                // v11(10) but no D ⇒ NLF on D fails; v10(9) likewise.
        assert_eq!(cpi.candidates(1), &[2, 4, 6]);
        // u2.C: C-neighbors of u0.C ∩ C-neighbors of u1.C with D nbr.
        assert_eq!(cpi.candidates(2), &[3, 5, 7]);
        // u3.C: D vertices adjacent to a u1 candidate and a u2 candidate.
        assert_eq!(cpi.candidates(3), &[11, 12]);
    }

    #[test]
    fn rows_follow_tree_edges() {
        let (q, g) = figure7_graphs();
        let cpi = build_td(&q, &g, 0);
        // Parent of u1 is u0. Row of v1 (pos 0 in u0.C) must list u1
        // candidates adjacent to v1: v3(2), v5(4), v7(6) → positions 0,1,2.
        let row = cpi.row(1, 0);
        let verts: Vec<u32> = row.iter().map(|&p| cpi.candidates(1)[p as usize]).collect();
        assert_eq!(verts, vec![2, 4, 6]);
        // Row of v2 (pos 1): only v7(6).
        let row = cpi.row(1, 1);
        let verts: Vec<u32> = row.iter().map(|&p| cpi.candidates(1)[p as usize]).collect();
        assert_eq!(verts, vec![6]);
    }

    #[test]
    fn soundness_on_small_graph() {
        // Build a query that embeds at a known place and check every mapped
        // vertex is a candidate (Lemma 5.2).
        let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let g = graph_from_edges(
            &[0, 1, 2, 0, 1, 2],
            &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)],
        )
        .unwrap();
        let cpi = build_td(&q, &g, 0);
        // Embeddings: (0,1,2) and (3,4,5).
        assert!(cpi.candidates(0).contains(&0) && cpi.candidates(0).contains(&3));
        assert!(cpi.candidates(1).contains(&1) && cpi.candidates(1).contains(&4));
        assert!(cpi.candidates(2).contains(&2) && cpi.candidates(2).contains(&5));
    }
}
