//! Reusable per-task scratch for CPI construction.
//!
//! Every build task (candidate generation, row construction, refinement,
//! freeze remapping) needs the same few `O(|V(G)|)` working buffers. They
//! used to be allocated per build — and the nested row representation
//! allocated per *vertex* — which put the allocator on the hot path. This
//! module keeps a small process-wide free list of [`BuildScratch`] blocks:
//! a task checks one out, uses it, restores it to the clean state and puts
//! it back, so steady-state construction performs no `O(|V(G)|)`
//! allocations at all and concurrent build tasks never share a buffer.

use crate::sync::{Mutex, PoisonError};

use cfl_graph::FixedBitSet;

/// Cap on pooled blocks: enough for every pool worker plus a few nested
/// callers; beyond that, blocks are simply dropped.
const MAX_POOLED: usize = 16;

/// Working memory for one build task. Invariant between checkouts: both
/// bitsets empty, `pos_of` all `u32::MAX`, `list` empty — callers restore
/// this (cheaply, via the keys they touched) instead of paying a full
/// clear on checkout.
pub(crate) struct BuildScratch {
    /// General membership mask over data vertices (candidate sets,
    /// neighborhood unions).
    pub mask: FixedBitSet,
    /// Dedup mask for seed-list generation.
    pub seen: FixedBitSet,
    /// Data vertex → position lookup (`u32::MAX` = absent).
    pub pos_of: Vec<u32>,
    /// General `u32` list buffer.
    pub list: Vec<u32>,
}

impl BuildScratch {
    fn new() -> Self {
        BuildScratch {
            mask: FixedBitSet::new(0),
            seen: FixedBitSet::new(0),
            pos_of: Vec::new(),
            list: Vec::new(),
        }
    }

    /// Grows every buffer to cover keys `0..n`, preserving the clean-state
    /// invariant.
    fn ensure(&mut self, n: usize) {
        if self.mask.capacity() < n {
            self.mask = FixedBitSet::new(n);
            self.seen = FixedBitSet::new(n);
        }
        if self.pos_of.len() < n {
            self.pos_of.resize(n, u32::MAX);
        }
    }

    /// Whether the clean-state invariant holds (debug checks only — the
    /// scan is `O(|V(G)|)`).
    fn is_clean(&self) -> bool {
        self.mask.is_empty()
            && self.seen.is_empty()
            && self.list.is_empty()
            && self.pos_of.iter().all(|&p| p == u32::MAX)
    }
}

static FREE: Mutex<Vec<BuildScratch>> = Mutex::new(Vec::new());

/// Checks out a scratch block sized for `n` data vertices, runs `f`, and
/// returns the block to the pool. `f` must leave the block clean (asserted
/// in debug builds); a panicking `f` simply drops the block.
pub(crate) fn with_scratch<R>(n: usize, f: impl FnOnce(&mut BuildScratch) -> R) -> R {
    let mut s = FREE
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .pop()
        .unwrap_or_else(BuildScratch::new);
    s.ensure(n);
    debug_assert!(s.is_clean(), "scratch checked out dirty");
    let r = f(&mut s);
    debug_assert!(s.is_clean(), "scratch returned dirty");
    let mut free = FREE.lock().unwrap_or_else(PoisonError::into_inner);
    if free.len() < MAX_POOLED {
        free.push(s);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_grows_and_recycles() {
        with_scratch(100, |s| {
            assert!(s.mask.capacity() >= 100);
            assert!(s.pos_of.len() >= 100);
            s.mask.insert(42);
            s.pos_of[7] = 3;
            s.list.push(9);
            // Restore the invariant the way real callers do.
            s.mask.remove(42);
            s.pos_of[7] = u32::MAX;
            s.list.clear();
        });
        // A recycled block serves a larger request.
        with_scratch(500, |s| {
            assert!(s.mask.capacity() >= 500);
            assert!(!s.mask.contains(42));
        });
    }

    #[test]
    #[should_panic(expected = "scratch returned dirty")]
    #[cfg(debug_assertions)]
    fn dirty_return_is_caught() {
        with_scratch(10, |s| s.mask.insert(1));
    }
}
