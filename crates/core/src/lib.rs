//! # cfl-match
//!
//! A Rust implementation of **CFL-Match** — Bi, Chang, Lin, Qin, Zhang,
//! *Efficient Subgraph Matching by Postponing Cartesian Products*,
//! SIGMOD 2016.
//!
//! Given a connected vertex-labeled query graph `q` and data graph `G`, the
//! engine enumerates all subgraph-isomorphic embeddings of `q` in `G`:
//!
//! 1. **CFL decomposition** (§3) splits `q` into its 2-core, the forest
//!    hanging off it, and the degree-one leaves, so that strongly
//!    constrained structure is matched first and Cartesian products among
//!    weakly constrained parts are postponed;
//! 2. a **compact path-index (CPI)** (§4.1, §5) of size
//!    `O(|E(G)|·|V(q)|)` is built in `O(|E(G)|·|E(q)|)` time — top-down
//!    construction plus bottom-up refinement, with label / degree /
//!    maximum-neighbor-degree / NLF candidate filters;
//! 3. the **matching order** (§4.2.1) greedily orders the root-to-leaf
//!    paths of the CPI by dynamic-programming estimates of their embedding
//!    counts;
//! 4. **core-match / forest-match / leaf-match** (§4.2.2–§4.4) enumerate
//!    embeddings over the CPI, probing `G` only for non-tree edges, with
//!    leaves compressed into NEC units and label classes.
//!
//! ```
//! use cfl_graph::graph_from_edges;
//! use cfl_match::{collect_embeddings, MatchConfig};
//!
//! // Query: a labeled triangle. Data: two triangles sharing a vertex.
//! let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]).unwrap();
//! let g = graph_from_edges(
//!     &[0, 1, 2, 1, 2],
//!     &[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)],
//! )
//! .unwrap();
//! let (embeddings, report) = collect_embeddings(&q, &g, &MatchConfig::exhaustive()).unwrap();
//! assert_eq!(embeddings.len(), 2);
//! assert!(report.outcome.is_complete());
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
pub mod cache;
pub mod config;
pub mod cost;
pub mod cpi;
pub mod decompose;
pub mod error;
pub mod exec;
pub mod extended;
pub mod filters;
#[cfg(all(test, feature = "loom-model"))]
mod models;
#[cfg(feature = "oracle")]
pub mod oracle;
pub mod order;
mod pool;
pub mod refresh;
pub mod result;
pub mod root;
pub mod serve;
pub mod session;
pub mod stream;
pub(crate) mod sync;
#[cfg(feature = "validate")]
pub mod validate;

pub use cache::{PlanCache, PlanCacheStats, DEFAULT_PLAN_CACHE_CAPACITY};
pub use config::{
    Budget, CancelToken, CpiMode, DecompositionMode, MatchConfig, OrderStrategy, OrderingKind,
    PruningKind,
};
pub use cost::{evaluate_cost, CostBreakdown};
pub use cpi::Cpi;
pub use decompose::{
    forest_independent_set, is_independent_set, CflDecomposition, ForestTree, Role,
};
pub use error::Error;
pub use exec::{
    collect_embeddings, collect_embeddings_parallel, count_embeddings, count_embeddings_parallel,
    find_embeddings, prepare, Prepared,
};
pub use extended::{collect_embeddings_extended, find_embeddings_extended};
pub use filters::{FilterContext, FilterOptions, GraphStats, VerdictCache};
pub use order::{compute_order, compute_order_with, OrderPlan, OrderedVertex};
pub use refresh::{Maintained, RefreshKind, RefreshStats, DAMAGE_THRESHOLD};
pub use result::{Embedding, EmbeddingChecksum, MatchOutcome, MatchReport, MatchStats};
pub use serve::{Engine, EngineConfig, QueryEvent, QueryHandle, QuerySpec, Server, SubmitError};

// Observability types (`cfl-trace`) surface on `MatchStats::trace`;
// re-exported so downstream crates can consume reports without naming the
// leaf crate. Populated only under the `trace` feature.
pub use cfl_trace::{BuildTrace, CpiMetrics, TraceReport, WorkerTrace};
pub use root::{select_root, select_root_with_candidates};
pub use session::DataGraph;
pub use stream::EmbeddingStream;
#[cfg(feature = "validate")]
pub use validate::verify_prepared;
