//! Matching configuration: algorithm variants and resource budgets.

use std::time::Duration;

use crate::filters::FilterOptions;
use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::Arc;

/// A shared cooperative-cancellation handle.
///
/// Cloning yields another handle to the same flag; [`cancel`](Self::cancel)
/// is a monotonic `false → true` latch that the enumerator polls at its
/// backtrack-quantum boundary (every [`crate::exec::CANCEL_QUANTUM`] search
/// nodes), so a cancelled search stops within one quantum of additional
/// work and reports [`MatchOutcome::Cancelled`](crate::MatchOutcome::Cancelled).
/// This is the serving layer's cancellation primitive, but it is plain
/// library API: attach one to a [`Budget`] and keep a clone to cancel any
/// in-flight run from another thread.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Latches the token. Idempotent; never un-cancels.
    pub fn cancel(&self) {
        // SeqCst: not on the hot path (one store per cancellation), and
        // exempt from the Relaxed-allowlist bookkeeping.
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether [`cancel`](Self::cancel) has been called on any clone.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// How the CPI auxiliary structure is constructed (§4.1, §5).
///
/// The evaluation's CPI ablation (Figure 15) compares these three modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CpiMode {
    /// `u.C` = every data vertex with label `l_q(u)`; no pruning
    /// (CFL-Match-Naive).
    Naive,
    /// Top-down construction only, Algorithm 3 (CFL-Match-TD).
    TopDown,
    /// Top-down construction plus bottom-up refinement, Algorithms 3 + 4
    /// (the full CFL-Match).
    TopDownRefined,
}

/// Which query decomposition drives the macro matching order (§3).
///
/// The framework ablation (Figure 14) compares these three modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecompositionMode {
    /// No decomposition: the whole query is matched as one structure
    /// (the `Match` variant).
    None,
    /// Core-forest decomposition only (`CF-Match`): leaves are treated as
    /// ordinary forest vertices.
    CoreForest,
    /// Full core-forest-leaf decomposition (`CFL-Match`).
    CoreForestLeaf,
}

/// How root-to-leaf paths are prioritized when building the matching order
/// (§4.2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderStrategy {
    /// The paper's greedy rule: minimize estimated embedding counts
    /// (Algorithm 2). Default.
    Greedy,
    /// Future-work exploration (§7): prefer paths that reach deeper into
    /// the k-core hierarchy of the query first (ties broken by the greedy
    /// rule), so the densest — most constrained — structure is matched
    /// earliest.
    CoreHierarchy,
    /// Ablation baseline: take paths in BFS discovery order with no
    /// cardinality estimation at all — isolates how much of CFL-Match's
    /// speed comes from Algorithm 2 itself.
    Arbitrary,
}

/// Which runtime vertex-selection rule the enumerator follows — the
/// [`OrderingStrategy`](crate::exec::strategy::OrderingStrategy) plugged
/// into the search. Distinct from [`OrderStrategy`], which ranks
/// root-to-leaf paths when the *static* plan is computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum OrderingKind {
    /// Follow the precomputed path-based plan (§4.2.1) verbatim. Default,
    /// and the oracle the other strategies are differential-tested against.
    #[default]
    StaticPath,
    /// DAF-style adaptive order: at every depth extend the unmatched
    /// CPI-tree vertex whose parent is mapped and whose candidate row for
    /// the current prefix is smallest.
    Adaptive,
}

/// Which backtracking rule prunes the search tree — the
/// [`PruningStrategy`](crate::exec::strategy::PruningStrategy) plugged
/// into the search.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PruningKind {
    /// Plain chronological backtracking (the paper's Algorithm 5). Default.
    #[default]
    Plain,
    /// DAF-style failing-set backtracking: track why each subtree failed
    /// and skip sibling candidates that provably reproduce the failure.
    FailingSet,
}

/// Resource limits for one matching invocation.
///
/// The paper reports up to a fixed number of embeddings (default `10^5`)
/// under a wall-clock limit, plotting "INF" on timeout; both knobs live
/// here, alongside the serving layer's cooperative [`CancelToken`].
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Stop after this many embeddings have been emitted (`None` = all).
    pub max_embeddings: Option<u64>,
    /// Stop after this much wall-clock time (`None` = unlimited).
    pub time_limit: Option<Duration>,
    /// Stop when this token is cancelled (`None` = not cancellable).
    /// Checked at the same backtrack-quantum stride as `time_limit`.
    pub cancel: Option<CancelToken>,
}

impl Budget {
    /// No limits: enumerate every embedding.
    pub const UNLIMITED: Budget = Budget {
        max_embeddings: None,
        time_limit: None,
        cancel: None,
    };

    /// Limit only the number of embeddings.
    pub fn first(n: u64) -> Self {
        Budget {
            max_embeddings: Some(n),
            ..Self::UNLIMITED
        }
    }

    /// Adds a wall-clock limit.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Attaches a cancellation token (keep a clone to trigger it).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// Full configuration of a CFL-Match run.
#[derive(Clone, Debug)]
pub struct MatchConfig {
    /// CPI construction mode.
    pub cpi: CpiMode,
    /// Query decomposition mode.
    pub decomposition: DecompositionMode,
    /// Path-ordering strategy.
    pub order: OrderStrategy,
    /// Runtime vertex-selection strategy used during enumeration. Does not
    /// affect preparation (the CPI and static plan are built regardless),
    /// so it is deliberately excluded from the plan-cache signature — like
    /// `budget` and `build_threads`.
    pub ordering: OrderingKind,
    /// Backtrack-pruning strategy used during enumeration. Excluded from
    /// the plan-cache signature for the same reason as `ordering`.
    pub pruning: PruningKind,
    /// Optional candidate filters (§A.6 ablation knobs).
    pub filters: FilterOptions,
    /// Resource limits.
    pub budget: Budget,
    /// Worker-pool participants for CPI construction (`1` = serial). The
    /// count affects only build speed, never results: parallel builds are
    /// byte-identical to serial ones.
    pub build_threads: usize,
}

impl Default for MatchConfig {
    /// The paper's best variant: full CFL decomposition with a refined CPI
    /// and the default `10^5`-embedding report limit of the evaluation.
    fn default() -> Self {
        MatchConfig {
            cpi: CpiMode::TopDownRefined,
            decomposition: DecompositionMode::CoreForestLeaf,
            order: OrderStrategy::Greedy,
            ordering: OrderingKind::StaticPath,
            pruning: PruningKind::Plain,
            filters: FilterOptions::default(),
            budget: Budget::first(100_000),
            build_threads: 1,
        }
    }
}

impl MatchConfig {
    /// CFL-Match with no budget limits (enumerate everything).
    pub fn exhaustive() -> Self {
        MatchConfig {
            budget: Budget::UNLIMITED,
            ..Self::default()
        }
    }

    /// The `Match` ablation variant (no decomposition).
    pub fn variant_match() -> Self {
        MatchConfig {
            decomposition: DecompositionMode::None,
            ..Self::default()
        }
    }

    /// The `CF-Match` ablation variant (core-forest only).
    pub fn variant_cf_match() -> Self {
        MatchConfig {
            decomposition: DecompositionMode::CoreForest,
            ..Self::default()
        }
    }

    /// The `CFL-Match-Naive` ablation variant.
    pub fn variant_naive_cpi() -> Self {
        MatchConfig {
            cpi: CpiMode::Naive,
            ..Self::default()
        }
    }

    /// The `CFL-Match-TD` ablation variant.
    pub fn variant_topdown_cpi() -> Self {
        MatchConfig {
            cpi: CpiMode::TopDown,
            ..Self::default()
        }
    }

    /// The future-work hierarchical-core ordering variant (§7).
    pub fn variant_core_hierarchy() -> Self {
        MatchConfig {
            order: OrderStrategy::CoreHierarchy,
            ..Self::default()
        }
    }

    /// Replaces the optional-filter configuration.
    pub fn with_filters(mut self, filters: FilterOptions) -> Self {
        self.filters = filters;
        self
    }

    /// Replaces the budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the CPI build-phase thread count (clamped to ≥ 1 at use).
    pub fn with_build_threads(mut self, threads: usize) -> Self {
        self.build_threads = threads;
        self
    }

    /// Replaces the runtime enumeration-ordering strategy.
    pub fn with_ordering(mut self, ordering: OrderingKind) -> Self {
        self.ordering = ordering;
        self
    }

    /// Replaces the backtrack-pruning strategy.
    pub fn with_pruning(mut self, pruning: PruningKind) -> Self {
        self.pruning = pruning;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_cfl() {
        let c = MatchConfig::default();
        assert_eq!(c.cpi, CpiMode::TopDownRefined);
        assert_eq!(c.decomposition, DecompositionMode::CoreForestLeaf);
        assert_eq!(c.budget.max_embeddings, Some(100_000));
    }

    #[test]
    fn variants_differ_only_where_expected() {
        assert_eq!(
            MatchConfig::variant_match().decomposition,
            DecompositionMode::None
        );
        assert_eq!(
            MatchConfig::variant_cf_match().decomposition,
            DecompositionMode::CoreForest
        );
        assert_eq!(MatchConfig::variant_naive_cpi().cpi, CpiMode::Naive);
        assert_eq!(MatchConfig::variant_topdown_cpi().cpi, CpiMode::TopDown);
        assert!(MatchConfig::exhaustive().budget.max_embeddings.is_none());
    }

    #[test]
    fn hierarchy_variant() {
        let c = MatchConfig::variant_core_hierarchy();
        assert_eq!(c.order, OrderStrategy::CoreHierarchy);
        assert_eq!(MatchConfig::default().order, OrderStrategy::Greedy);
    }

    #[test]
    fn build_threads_default_and_builder() {
        assert_eq!(MatchConfig::default().build_threads, 1);
        assert_eq!(
            MatchConfig::default().with_build_threads(4).build_threads,
            4
        );
    }

    #[test]
    fn strategy_defaults_and_builders() {
        let c = MatchConfig::default();
        assert_eq!(c.ordering, OrderingKind::StaticPath);
        assert_eq!(c.pruning, PruningKind::Plain);
        let c = c
            .with_ordering(OrderingKind::Adaptive)
            .with_pruning(PruningKind::FailingSet);
        assert_eq!(c.ordering, OrderingKind::Adaptive);
        assert_eq!(c.pruning, PruningKind::FailingSet);
    }

    #[test]
    fn budget_builders() {
        let b = Budget::first(10).with_time_limit(Duration::from_secs(1));
        assert_eq!(b.max_embeddings, Some(10));
        assert_eq!(b.time_limit, Some(Duration::from_secs(1)));
        assert!(Budget::UNLIMITED.max_embeddings.is_none());
    }
}
