//! Loom models of the crate's concurrency protocols.
//!
//! Compiled only under `--features loom-model` (`cargo test -p cfl-match
//! --features loom-model`). Each test wraps a protocol in [`model`], which
//! re-executes it under many seeded thread schedules; any execution that
//! deadlocks, leaks a parked thread, or fails an assertion fails the test
//! and prints the seed to replay (`LOOM_SEED=<n>`).
//!
//! Two kinds of test live here:
//!
//! * **protocol models** drive the *real* implementation — the worker
//!   pool's offer/park/claim/finish protocol via [`pool::hooks`] and the
//!   work-stealing claim cursor — and assert its documented invariants on
//!   every schedule;
//! * **seeded-bug models** (`seeded_*`) inject a representative bug
//!   (dropped notify, non-atomic claim) into a copy of the protocol shape
//!   and assert the checker *fails*, guarding against the model harness
//!   rotting into a vacuous green.
//!
//! `docs/SOUNDNESS.md` is the narrative index of what each model covers.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::pool::{hooks::OwnedPool, parallel_map_model};
use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::{model, thread, Arc, Condvar, Mutex, PoisonError};

/// Offer/park/claim/finish under every schedule: every index is computed,
/// results commit in index order, and the pool retires cleanly. A lost
/// wakeup anywhere in the protocol (a worker parked forever on
/// `work_ready`, or the caller parked forever on `work_done`) surfaces as
/// a deadlock the scheduler reports; a worker that never exits surfaces as
/// a leaked thread at drain.
#[test]
fn pool_protocol_no_lost_wakeups() {
    model(|| {
        let pool = OwnedPool::with_workers(2);
        let out = parallel_map_model(&pool, 2, 3, |i| i * 10);
        assert_eq!(out, vec![0, 10, 20]);
        pool.shutdown();
    });
}

/// Index-ordered commit determinism: on every schedule the output of
/// `parallel_map` equals the serial map, no matter which participant
/// computed which index. This is the property the byte-identical parallel
/// CPI build rests on.
#[test]
fn commit_order_is_deterministic() {
    model(|| {
        let pool = OwnedPool::with_workers(1);
        let serial: Vec<usize> = (0..4).map(|i| i * i + 1).collect();
        let par = parallel_map_model(&pool, 1, 4, |i| i * i + 1);
        assert_eq!(par, serial);
        pool.shutdown();
    });
}

/// The job slot never outlives `run`: no schedule lets a worker enter the
/// caller's closure after `parallel_map` has returned. This is exactly the
/// invariant the `unsafe` in `pool::JobPtr` rests on — the closure
/// borrows stack data of the `run` frame, so a late call would be a
/// use-after-free in production. The `returned` latch is flipped
/// immediately after the call returns; any straggler observing it trips
/// the assertion (an escaped panic on a modeled thread fails the model).
#[test]
fn job_slot_never_outlives_run() {
    model(|| {
        let pool = OwnedPool::with_workers(2);
        let returned = Arc::new(AtomicBool::new(false));
        {
            let returned = Arc::clone(&returned);
            let out = parallel_map_model(&pool, 2, 3, move |i| {
                assert!(
                    !returned.load(Ordering::SeqCst),
                    "job closure entered after parallel_map returned"
                );
                i
            });
            assert_eq!(out, vec![0, 1, 2]);
        }
        returned.store(true, Ordering::SeqCst);
        pool.shutdown();
    });
}

/// A panicking task must never wedge the pool, on any schedule: whether
/// the caller or a worker claims the poisoned index, `parallel_map`
/// propagates a panic (the task's own, or the completeness assertion) and
/// the pool then serves a fresh round and retires cleanly. A missed
/// cleanup path would show up as a deadlock (caller parked on `work_done`)
/// or a leaked worker at drain.
#[test]
fn worker_panic_cleanup_no_deadlock() {
    model(|| {
        let pool = OwnedPool::with_workers(1);
        let r = catch_unwind(AssertUnwindSafe(|| {
            parallel_map_model(&pool, 1, 2, |i| {
                assert!(i != 0, "task failure");
                i
            })
        }));
        assert!(r.is_err(), "a panicking task must fail parallel_map");
        // The pool must have been restored to idle: a second round works.
        let out = parallel_map_model(&pool, 1, 2, |i| i + 5);
        assert_eq!(out, vec![5, 6]);
        pool.shutdown();
    });
}

/// The work-stealing claim cursor (`Enumerator::run_stealing`): a Relaxed
/// `fetch_add` RMW hands every participant a distinct position, so each
/// root candidate is claimed exactly once on every schedule.
#[test]
fn cursor_claims_exactly_once() {
    model(|| {
        const ROOTS: usize = 3;
        let cursor = Arc::new(AtomicU64::new(0));
        let hits: Arc<Vec<AtomicU64>> = Arc::new((0..ROOTS).map(|_| AtomicU64::new(0)).collect());
        let worker = {
            let cursor = Arc::clone(&cursor);
            let hits = Arc::clone(&hits);
            move || loop {
                let pos = cursor.fetch_add(1, Ordering::Relaxed);
                if pos >= ROOTS as u64 {
                    break;
                }
                hits[pos as usize].fetch_add(1, Ordering::Relaxed);
            }
        };
        let h = thread::spawn(worker.clone());
        worker();
        h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        for (i, hit) in hits.iter().enumerate() {
            assert_eq!(
                hit.load(Ordering::SeqCst),
                1,
                "root candidate {i} not claimed exactly once"
            );
        }
    });
}

/// Companion bound to the claim model (the documented budget/overshoot
/// argument in `exec/parallel.rs`): each participant performs at most one
/// over-the-end `fetch_add` before exiting its steal loop, so the cursor's
/// final value never exceeds `num_roots + participants` on any schedule.
#[test]
fn cursor_overshoot_is_bounded() {
    model(|| {
        const ROOTS: u64 = 2;
        const PARTICIPANTS: u64 = 3;
        let cursor = Arc::new(AtomicU64::new(0));
        let worker = {
            let cursor = Arc::clone(&cursor);
            move || loop {
                if cursor.fetch_add(1, Ordering::Relaxed) >= ROOTS {
                    break;
                }
            }
        };
        let h1 = thread::spawn(worker.clone());
        let h2 = thread::spawn(worker.clone());
        worker();
        h1.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        h2.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        let overshoot = cursor.load(Ordering::SeqCst);
        assert!(
            overshoot <= ROOTS + PARTICIPANTS,
            "cursor overshot the documented bound: {overshoot}"
        );
    });
}

/// Meta-test: a *dropped notify* — the offer path publishing its predicate
/// but never signalling the condvar — must be caught. Under some schedule
/// the consumer checks the predicate first, parks, and then nothing ever
/// wakes it: the scheduler reports a deadlock, which `model` converts to a
/// panic. If this test ever starts passing its inner model, the checker
/// has gone vacuous.
#[test]
fn seeded_dropped_notify_is_caught() {
    let r = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let consumer = {
                let pair = Arc::clone(&pair);
                thread::spawn(move || {
                    let (m, cv) = &*pair;
                    let mut ready = m.lock().unwrap_or_else(PoisonError::into_inner);
                    while !*ready {
                        ready = cv.wait(ready).unwrap_or_else(PoisonError::into_inner);
                    }
                })
            };
            {
                let (m, _cv) = &*pair;
                *m.lock().unwrap_or_else(PoisonError::into_inner) = true;
                // BUG (seeded): no `_cv.notify_all()` after publishing.
            }
            consumer
                .join()
                .unwrap_or_else(|e| std::panic::resume_unwind(e));
        });
    }));
    assert!(
        r.is_err(),
        "the model checker failed to catch a dropped condvar notify"
    );
}

/// Meta-test: a *double-claimed index* — the cursor advanced with a
/// non-atomic load-then-store instead of `fetch_add` — must be caught.
/// Under some schedule both participants load the same position, both
/// claim it, and the exactly-once assertion fires inside the model.
#[test]
fn seeded_double_claim_is_caught() {
    let r = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            const ROOTS: usize = 2;
            let cursor = Arc::new(AtomicU64::new(0));
            let hits: Arc<Vec<AtomicU64>> =
                Arc::new((0..ROOTS).map(|_| AtomicU64::new(0)).collect());
            let worker = {
                let cursor = Arc::clone(&cursor);
                let hits = Arc::clone(&hits);
                move || loop {
                    // BUG (seeded): load + store is not an atomic claim.
                    let pos = cursor.load(Ordering::Relaxed);
                    if pos >= ROOTS as u64 {
                        break;
                    }
                    cursor.store(pos + 1, Ordering::Relaxed);
                    hits[pos as usize].fetch_add(1, Ordering::Relaxed);
                }
            };
            let h = thread::spawn(worker.clone());
            worker();
            h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
            for hit in &**hits {
                assert_eq!(hit.load(Ordering::SeqCst), 1, "index claimed twice");
            }
        });
    }));
    assert!(
        r.is_err(),
        "the model checker failed to catch a double-claimed cursor index"
    );
}
