//! Error type for matching runs.

/// Errors a matching run can report before enumeration starts.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use = "a matching error identifies an invalid input and should be handled"]
pub enum Error {
    /// The query graph is empty.
    EmptyQuery,
    /// The query graph is not connected (the problem statement assumes a
    /// connected query; disconnected queries would require a Cartesian
    /// product of per-component results).
    DisconnectedQuery,
    /// The query has more vertices than the data graph, so no injective
    /// mapping exists. Reported as an error rather than "0 embeddings" to
    /// catch swapped arguments early.
    QueryLargerThanData {
        /// |V(q)|
        query_vertices: usize,
        /// |V(G)|
        data_vertices: usize,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::EmptyQuery => write!(f, "query graph has no vertices"),
            Error::DisconnectedQuery => write!(f, "query graph must be connected"),
            Error::QueryLargerThanData {
                query_vertices,
                data_vertices,
            } => write!(
                f,
                "query has {query_vertices} vertices but data graph has only {data_vertices}"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatchConfig;
    use crate::exec::prepare;
    use cfl_graph::graph_from_edges;

    #[test]
    fn display_messages() {
        assert!(Error::EmptyQuery.to_string().contains("no vertices"));
        assert!(Error::DisconnectedQuery.to_string().contains("connected"));
        let e = Error::QueryLargerThanData {
            query_vertices: 9,
            data_vertices: 4,
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
    }

    #[test]
    fn empty_query_is_reported() {
        let q = graph_from_edges(&[], &[]).unwrap();
        let g = graph_from_edges(&[0, 1], &[(0, 1)]).unwrap();
        let Err(err) = prepare(&q, &g, &MatchConfig::default()) else {
            panic!("expected an error");
        };
        assert_eq!(err, Error::EmptyQuery);
    }

    #[test]
    fn disconnected_query_is_reported() {
        let q = graph_from_edges(&[0, 1, 2], &[(0, 1)]).unwrap();
        let g = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2)]).unwrap();
        let Err(err) = prepare(&q, &g, &MatchConfig::default()) else {
            panic!("expected an error");
        };
        assert_eq!(err, Error::DisconnectedQuery);
    }

    #[test]
    fn oversized_query_is_reported_with_sizes() {
        let q = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]).unwrap();
        let g = graph_from_edges(&[0, 0], &[(0, 1)]).unwrap();
        let Err(err) = prepare(&q, &g, &MatchConfig::default()) else {
            panic!("expected an error");
        };
        assert_eq!(
            err,
            Error::QueryLargerThanData {
                query_vertices: 3,
                data_vertices: 2,
            }
        );
    }

    #[test]
    fn error_trait_object_roundtrip() {
        let boxed: Box<dyn std::error::Error> = Box::new(Error::DisconnectedQuery);
        assert!(boxed.source().is_none());
        assert_eq!(boxed.to_string(), Error::DisconnectedQuery.to_string());
    }
}
