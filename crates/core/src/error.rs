//! Error type for matching runs.

/// Errors a matching run can report before enumeration starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The query graph is empty.
    EmptyQuery,
    /// The query graph is not connected (the problem statement assumes a
    /// connected query; disconnected queries would require a Cartesian
    /// product of per-component results).
    DisconnectedQuery,
    /// The query has more vertices than the data graph, so no injective
    /// mapping exists. Reported as an error rather than "0 embeddings" to
    /// catch swapped arguments early.
    QueryLargerThanData {
        /// |V(q)|
        query_vertices: usize,
        /// |V(G)|
        data_vertices: usize,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::EmptyQuery => write!(f, "query graph has no vertices"),
            Error::DisconnectedQuery => write!(f, "query graph must be connected"),
            Error::QueryLargerThanData {
                query_vertices,
                data_vertices,
            } => write!(
                f,
                "query has {query_vertices} vertices but data graph has only {data_vertices}"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(Error::EmptyQuery.to_string().contains("no vertices"));
        assert!(Error::DisconnectedQuery.to_string().contains("connected"));
        let e = Error::QueryLargerThanData {
            query_vertices: 9,
            data_vertices: 4,
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
    }
}
