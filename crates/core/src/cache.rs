//! Canonical query-fingerprint plan cache.
//!
//! Repeat-query workloads (the paper's evaluation issues query *sets*
//! drawn from a few templates) rebuild structurally identical CPIs over
//! and over. A [`PlanCache`] amortizes that: each prepared query is keyed
//! by `(data-graph epoch, canonical fingerprint, config signature)`, where
//! the fingerprint comes from [`cfl_graph::canonical_query`] — equal for
//! any two queries that are label-preserving isomorphic, regardless of
//! vertex numbering. A hit hands back the frozen CPI arenas (`Arc`-shared,
//! never copied), the matching order and the decomposition; the only
//! per-hit work is composing the two canonical permutations so embeddings
//! stream out indexed by the *caller's* vertex numbering.
//!
//! Safety of a hit rests on two checks layered over the 128-bit hash:
//! the stored [`CanonicalQuery`] concrete form must be equal (so neither
//! hash collisions nor label-renamed variants alias — renamed labels mean
//! different data-side candidates), and the entry's epoch and config
//! signature must match (a [`GraphDelta`](cfl_graph::GraphDelta) bumps the
//! epoch, so stale plans miss naturally; budget and thread-count knobs are
//! excluded from the signature because they don't affect preparation).
//!
//! Eviction is LRU with a bounded entry count. Counters (lookups, hits,
//! misses, evictions) are always-on atomics surfaced through
//! [`PlanCache::snapshot`]; lookups = hits + misses is an accounting
//! identity `cfl-verify` checks.

use cfl_graph::{canonical_query, AppliedDelta, CanonicalQuery, Graph, VertexId};

use crate::config::{CpiMode, DecompositionMode, MatchConfig, OrderStrategy};
use crate::cpi::Cpi;
use crate::decompose::CflDecomposition;
use crate::exec::{root_eligible, Prepared};
use crate::filters::{cand_verify_stats, FilterContext, FilterOptions, GraphStats};
use crate::order::OrderPlan;
use crate::result::MatchStats;
use crate::root::select_root_with_candidates;
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Arc, Mutex, PoisonError};

/// Default bound on cached plans per [`PlanCache`]. Workloads rarely use
/// more than a few dozen query templates; beyond that LRU recency keeps
/// the hot ones resident.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 64;

/// The preparation-relevant slice of a [`MatchConfig`]: two configs with
/// equal signatures produce identical CPIs, orders and decompositions.
/// `budget` (enumeration-only) and `build_threads` (the build is
/// thread-count invariant — CI gates on it) are deliberately excluded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ConfigSig {
    cpi: CpiMode,
    decomposition: DecompositionMode,
    order: OrderStrategy,
    filters: FilterOptions,
}

impl ConfigSig {
    fn of(config: &MatchConfig) -> Self {
        ConfigSig {
            cpi: config.cpi,
            decomposition: config.decomposition,
            order: config.order,
            filters: config.filters,
        }
    }
}

/// A frozen preparation in the *cached* query's vertex numbering, plus
/// everything needed to serve it to an isomorphic caller.
pub(crate) struct CachedPlan {
    /// The query the plan was built for (owned clone; queries are tiny).
    pub(crate) q: Graph,
    pub(crate) decomposition: CflDecomposition,
    pub(crate) cpi: Arc<Cpi>,
    pub(crate) plan: OrderPlan,
    pub(crate) stats: MatchStats,
    /// `order[p]` = cached-query vertex at canonical position `p`; the
    /// remap for a hit composes this with the caller's `perm`.
    pub(crate) canon_order: Vec<u32>,
}

impl CachedPlan {
    /// Embedding remap serving a caller whose canonicalization is `canon`:
    /// `remap[v]` is the cached-query vertex playing caller vertex `v`'s
    /// role, so `emb_caller[v] = emb_cached[remap[v]]`.
    pub(crate) fn remap_for(&self, canon: &CanonicalQuery) -> Vec<u32> {
        canon
            .perm
            .iter()
            .map(|&p| self.canon_order[p as usize])
            .collect()
    }
}

/// Counter snapshot; `lookups == hits + misses` always holds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Cache consultations (one per prepare attempt through a cached
    /// session, including queries the canonicalizer gave up on).
    pub lookups: u64,
    /// Lookups served from a stored plan.
    pub hits: u64,
    /// Lookups that fell through to a cold preparation.
    pub misses: u64,
    /// Entries displaced by LRU capacity pressure.
    pub evictions: u64,
    /// Entries refreshed in place across a delta by
    /// [`PlanCache::refresh`] instead of going stale with the epoch bump.
    pub refreshes: u64,
}

struct Entry {
    epoch: u64,
    sig: ConfigSig,
    canon: CanonicalQuery,
    plan: Arc<CachedPlan>,
}

/// A bounded LRU of prepared query plans, keyed by canonical fingerprint.
///
/// Shareable (`Arc`) across [`DataGraph`](crate::session::DataGraph)
/// sessions, but only across versions of the *same* data graph lineage:
/// entries are distinguished by graph epoch, which delta application
/// bumps, not by graph identity.
pub struct PlanCache {
    capacity: usize,
    /// LRU order: front = coldest, back = hottest.
    entries: Mutex<Vec<Entry>>,
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    refreshes: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            entries: Mutex::new(Vec::new()),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
        }
    }

    /// A cache with the [default capacity](DEFAULT_PLAN_CACHE_CAPACITY).
    pub fn with_default_capacity() -> Self {
        Self::new(DEFAULT_PLAN_CACHE_CAPACITY)
    }

    /// Current counter values.
    pub fn snapshot(&self) -> PlanCacheStats {
        PlanCacheStats {
            lookups: self.lookups.load(Ordering::Acquire),
            hits: self.hits.load(Ordering::Acquire),
            misses: self.misses.load(Ordering::Acquire),
            evictions: self.evictions.load(Ordering::Acquire),
            refreshes: self.refreshes.load(Ordering::Acquire),
        }
    }

    /// Number of resident plans.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no plans are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every resident plan (counters keep accumulating).
    pub fn clear(&self) {
        self.lock().clear();
    }

    fn lock(&self) -> crate::sync::MutexGuard<'_, Vec<Entry>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Canonicalizes `q` and consults the cache. Returns the caller's
    /// canonicalization (for a later [`insert`](Self::insert)) and the
    /// stored plan on a hit. Every call counts as one lookup; a `None`
    /// canonicalization (budget bailout on a pathological query) counts
    /// as a miss with nothing to store.
    pub(crate) fn lookup(
        &self,
        q: &Graph,
        epoch: u64,
        config: &MatchConfig,
    ) -> (Option<CanonicalQuery>, Option<Arc<CachedPlan>>) {
        self.lookups.fetch_add(1, Ordering::AcqRel);
        let Some(canon) = canonical_query(q) else {
            self.misses.fetch_add(1, Ordering::AcqRel);
            return (None, None);
        };
        let sig = ConfigSig::of(config);
        let mut entries = self.lock();
        let found = entries.iter().position(|e| {
            e.epoch == epoch
                && e.sig == sig
                && e.canon.fingerprint == canon.fingerprint
                && e.canon.same_concrete_form(&canon)
        });
        match found {
            Some(i) => {
                self.hits.fetch_add(1, Ordering::AcqRel);
                // Refresh recency: move to the back.
                let entry = entries.remove(i);
                let plan = Arc::clone(&entry.plan);
                entries.push(entry);
                (Some(canon), Some(plan))
            }
            None => {
                self.misses.fetch_add(1, Ordering::AcqRel);
                (Some(canon), None)
            }
        }
    }

    /// Stores the plan a miss just prepared. Racing inserts of the same
    /// key keep the newest; capacity pressure evicts the coldest entry.
    pub(crate) fn insert(
        &self,
        epoch: u64,
        config: &MatchConfig,
        canon: CanonicalQuery,
        plan: Arc<CachedPlan>,
    ) {
        let sig = ConfigSig::of(config);
        let mut entries = self.lock();
        if let Some(i) = entries.iter().position(|e| {
            e.epoch == epoch
                && e.sig == sig
                && e.canon.fingerprint == canon.fingerprint
                && e.canon.same_concrete_form(&canon)
        }) {
            entries.remove(i);
        } else if entries.len() >= self.capacity {
            entries.remove(0);
            self.evictions.fetch_add(1, Ordering::AcqRel);
        }
        entries.push(Entry {
            epoch,
            sig,
            canon,
            plan,
        });
    }

    /// Carries resident plans across a delta instead of letting the epoch
    /// bump orphan them. For each entry keyed to the pre-delta epoch the
    /// cache replays the [`Maintained`](crate::refresh::Maintained)
    /// retention proof — no CandVerify verdict flips on the dirty
    /// frontier, no delta edge bridges verify-passing endpoints across a
    /// query edge, root selection stable — and on success stamps the entry
    /// with the new epoch in place (`Arc`-shared arenas untouched), so the
    /// next lookup against the successor graph hits without a cold
    /// prepare. Entries the proof cannot cover are dropped (not counted as
    /// evictions); entries at other epochs are left alone. Returns the
    /// number of plans refreshed; the cumulative count is surfaced as
    /// [`PlanCacheStats::refreshes`].
    ///
    /// `old` must be the graph the delta was applied to (the retention
    /// proof evaluates the previous epoch's statistics through it); a
    /// mismatched lineage or a vertex-set change refreshes nothing.
    pub fn refresh(&self, old: &Graph, applied: &AppliedDelta) -> usize {
        let g = &applied.graph;
        if g.epoch() != old.epoch() + 1 || g.num_vertices() != old.num_vertices() {
            return 0;
        }
        let old_epoch = old.epoch();
        let new_epoch = g.epoch();
        let mut refreshed = 0usize;
        let mut entries = self.lock();
        entries.retain_mut(|e| {
            if e.epoch != old_epoch {
                return true;
            }
            if plan_survives_delta(&e.plan, &e.sig, old, applied) {
                e.epoch = new_epoch;
                refreshed += 1;
                true
            } else {
                false
            }
        });
        drop(entries);
        self.refreshes.fetch_add(refreshed as u64, Ordering::AcqRel);
        refreshed
    }
}

/// The per-entry retention proof behind [`PlanCache::refresh`] — the
/// [`Maintained`](crate::refresh::Maintained) proof replayed against a
/// cached plan's own query and config signature (see `refresh.rs` for the
/// soundness argument). The **Unchanged** short-circuit applies when the
/// dirty frontier carries no query label; otherwise the three-part
/// retention proof runs, which is only sound with the NLF filter on
/// (CandVerify must subsume the degree pre-filter) and never with the
/// label-pair blooms on (their 2-hop reach exceeds the frontier).
fn plan_survives_delta(
    plan: &CachedPlan,
    sig: &ConfigSig,
    old: &Graph,
    applied: &AppliedDelta,
) -> bool {
    if sig.filters.use_label_pair {
        return false;
    }
    let q = &plan.q;
    let g = &applied.graph;
    let mut q_has_label = vec![false; q.num_labels()];
    for u in q.vertices() {
        q_has_label[q.label(u).0 as usize] = true;
    }
    let carries = |v: VertexId| {
        let l = g.label(v).0 as usize;
        l < q_has_label.len() && q_has_label[l]
    };
    if !applied.dirty.iter().any(|&v| carries(v)) {
        return true;
    }
    if !sig.filters.use_nlf {
        return false;
    }
    let q_stats = GraphStats::build(q);
    let old_stats = GraphStats::build(old);
    let new_stats = GraphStats::build(g);

    // (1) No verdict may flip across the delta, over the dirty frontier.
    for &v in &applied.dirty {
        if !carries(v) {
            continue;
        }
        for u in q.vertices() {
            if q.label(u) != g.label(v) {
                continue;
            }
            let was = cand_verify_stats(&q_stats, &old_stats, sig.filters, v, u).passed;
            let now = cand_verify_stats(&q_stats, &new_stats, sig.filters, v, u).passed;
            if was != now {
                return false;
            }
        }
    }

    // (2) No delta edge may bridge verify-passing endpoints across a
    // query edge, in either orientation.
    let ctx = FilterContext::with_options(q, g, &q_stats, &new_stats, sig.filters);
    let delta = &applied.delta;
    for &(x, y) in delta.inserts().iter().chain(delta.deletes().iter()) {
        for (a, b) in [(x, y), (y, x)] {
            for u in q.vertices() {
                if q.label(u) != g.label(a) || !ctx.cand_verify(a, u) {
                    continue;
                }
                for &w in q.neighbors(u) {
                    if q.label(w) == g.label(b) && ctx.cand_verify(b, w) {
                        return false;
                    }
                }
            }
        }
    }

    // (3) Root selection replayed over the new statistics must be stable.
    let eligible = root_eligible(q, sig.decomposition);
    let (root, _) = select_root_with_candidates(&ctx, &eligible);
    root == plan.cpi.root()
}

/// Builds the cacheable snapshot of a preparation: `Arc`-shares the CPI,
/// clones the small plan structures and the query itself.
pub(crate) fn cacheable_plan(q: &Graph, prepared: &Prepared, canon: &CanonicalQuery) -> CachedPlan {
    CachedPlan {
        q: q.clone(),
        decomposition: prepared.decomposition.clone(),
        cpi: Arc::clone(&prepared.cpi),
        plan: prepared.plan.clone(),
        stats: prepared.stats.clone(),
        canon_order: canon.order.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfl_graph::graph_from_edges;

    fn entry_for(q: &Graph, g: &Graph, config: &MatchConfig) -> (CanonicalQuery, Arc<CachedPlan>) {
        let prepared = crate::exec::prepare(q, g, config).unwrap();
        let canon = canonical_query(q).unwrap();
        let plan = Arc::new(cacheable_plan(q, &prepared, &canon));
        (canon, plan)
    }

    fn data_graph() -> Graph {
        graph_from_edges(
            &[0, 1, 2, 0, 1, 2],
            &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 4)],
        )
        .unwrap()
    }

    #[test]
    fn isomorphic_queries_hit_distinct_labels_miss() {
        let g = data_graph();
        let config = MatchConfig::exhaustive();
        let cache = PlanCache::new(8);
        let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let (canon, plan) = entry_for(&q, &g, &config);
        cache.insert(g.epoch(), &config, canon, plan);

        // Vertex-renumbered variant of the same labeled triangle: hit.
        let iso = graph_from_edges(&[2, 0, 1], &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let (_, hit) = cache.lookup(&iso, g.epoch(), &config);
        assert!(hit.is_some());

        // Same shape, different labels: the fingerprints collide (renaming
        // invariance) but the concrete-form check rejects reuse.
        let relabeled = graph_from_edges(&[0, 1, 5], &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let (_, miss) = cache.lookup(&relabeled, g.epoch(), &config);
        assert!(miss.is_none());

        // Stale epoch: miss.
        let (_, stale) = cache.lookup(&q, g.epoch() + 1, &config);
        assert!(stale.is_none());

        // Different config signature: miss.
        let other = MatchConfig::variant_naive_cpi();
        let (_, other_cfg) = cache.lookup(&q, g.epoch(), &other);
        assert!(other_cfg.is_none());

        let snap = cache.snapshot();
        assert_eq!(snap.lookups, snap.hits + snap.misses);
        assert_eq!(snap.hits, 1);
        assert_eq!(snap.misses, 3);
    }

    #[test]
    fn lru_evicts_coldest_and_counts() {
        let g = data_graph();
        let config = MatchConfig::exhaustive();
        let cache = PlanCache::new(2);
        let queries = [
            graph_from_edges(&[0, 1], &[(0, 1)]).unwrap(),
            graph_from_edges(&[1, 2], &[(0, 1)]).unwrap(),
            graph_from_edges(&[0, 2], &[(0, 1)]).unwrap(),
        ];
        for q in &queries {
            let (canon, plan) = entry_for(q, &g, &config);
            cache.insert(g.epoch(), &config, canon, plan);
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.snapshot().evictions, 1);
        // The first-inserted (coldest) entry is gone; the later two live.
        assert!(cache.lookup(&queries[0], g.epoch(), &config).1.is_none());
        assert!(cache.lookup(&queries[1], g.epoch(), &config).1.is_some());
        assert!(cache.lookup(&queries[2], g.epoch(), &config).1.is_some());
    }

    #[test]
    fn refresh_carries_plans_across_deltas() {
        use cfl_graph::GraphDelta;
        // Two label-{0,1,2} triangles bridged by label-3 vertices (the
        // refresh-module motif).
        let g0 = graph_from_edges(
            &[0, 1, 2, 0, 1, 2, 3, 3],
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 4),
                (4, 5),
                (5, 3),
                (0, 6),
                (6, 3),
                (2, 7),
                (7, 5),
            ],
        )
        .unwrap();
        let config = MatchConfig::exhaustive();
        let cache = PlanCache::new(8);
        let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let (canon, plan) = entry_for(&q, &g0, &config);
        let arenas = Arc::clone(&plan.cpi);
        cache.insert(g0.epoch(), &config, canon, plan);

        // Edge between the two label-3 bridges: the retention proof holds
        // (no verdict flips, non-query-label endpoints cannot bridge
        // candidates, root stable), so the entry is restamped in place and
        // the next lookup at the successor epoch hits the same arenas.
        let mut d = GraphDelta::new();
        d.insert(6, 7);
        let applied = g0.apply_delta(&d).unwrap();
        assert_eq!(cache.refresh(&g0, &applied), 1);
        assert_eq!(cache.snapshot().refreshes, 1);
        let (_, hit) = cache.lookup(&q, applied.graph.epoch(), &config);
        let hit = hit.expect("refreshed plan must hit at the new epoch");
        assert!(Arc::ptr_eq(&hit.cpi, &arenas));
        // The carried plan is exact: bit-identical to a cold prepare
        // against the successor graph.
        assert_eq!(
            hit.cpi.checksum(),
            crate::exec::prepare(&q, &applied.graph, &config)
                .unwrap()
                .cpi
                .checksum()
        );

        // Edge between the two triangles bridges verify-passing endpoints
        // across a query edge: the proof refuses and the entry is dropped
        // (a stale plan served here would be wrong, not just cold).
        let g1 = applied.graph;
        let mut d = GraphDelta::new();
        d.insert(1, 3);
        let applied2 = g1.apply_delta(&d).unwrap();
        assert_eq!(cache.refresh(&g1, &applied2), 0);
        assert!(cache.is_empty());
        assert_eq!(cache.snapshot().refreshes, 1);

        // Mismatched lineage (epoch gap): nothing provable, no-op.
        let (canon, plan) = entry_for(&q, &g1, &config);
        cache.insert(g1.epoch(), &config, canon, plan);
        assert_eq!(cache.refresh(&g0, &applied2), 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn remap_composes_permutations() {
        let g = data_graph();
        let config = MatchConfig::exhaustive();
        // Path A-B-C, then its reversal C-B-A: vertex v plays role 2-v.
        let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2)]).unwrap();
        let rev = graph_from_edges(&[2, 1, 0], &[(0, 1), (1, 2)]).unwrap();
        let (canon_q, plan) = entry_for(&q, &g, &config);
        let canon_rev = canonical_query(&rev).unwrap();
        assert!(canon_q.same_concrete_form(&canon_rev));
        let remap = plan.remap_for(&canon_rev);
        assert_eq!(remap, vec![2, 1, 0]);
        // Self-remap is the identity.
        assert_eq!(plan.remap_for(&canon_q), vec![0, 1, 2]);
    }
}
