//! Candidate filtering (paper §A.6, Algorithm 6).
//!
//! A data vertex `v` can be a candidate of query vertex `u` only if
//!
//! 1. `l_G(v) = l_q(u)` (label filter, Ullmann),
//! 2. `d_G(v) ≥ d_q(u)` (degree filter, Ullmann),
//! 3. `mnd_G(v) ≥ mnd_q(u)` (maximum-neighbor-degree filter — the paper's
//!    new constant-time filter, Lemma A.1),
//! 4. for every label `l`, `d(v, l) ≥ d(u, l)` (NLF filter, SAPPER \[24\]).
//!
//! `CandVerify` checks the cheap MND filter before the `O(|L_N(u)|)` NLF
//! filter.

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::Arc;

use cfl_graph::{Graph, Label, NlfIndex, StatTables, VertexId};

/// Precomputed filter statistics for one graph (query or data side): a
/// shared handle to the graph's memoized [`StatTables`] (label index, NLF
/// signatures, MND). Derefs to the tables, so `stats.mnd[v]`,
/// `stats.nlf.packed(v)` etc. read straight from the cached arrays.
pub struct GraphStats {
    tables: Arc<StatTables>,
}

impl GraphStats {
    /// Fetches (building on first use) the graph's statistics tables.
    ///
    /// `prepare` calls this per query for both sides; because the tables
    /// are memoized on the graph, repeated matching against the same data
    /// graph pays the `O(|V| + |E|)` build once, which removes the
    /// dominant per-query cost on large data graphs.
    pub fn build(g: &Graph) -> Self {
        GraphStats {
            tables: g.stat_tables(),
        }
    }
}

impl std::ops::Deref for GraphStats {
    type Target = StatTables;

    #[inline]
    fn deref(&self) -> &StatTables {
        &self.tables
    }
}

/// Which optional candidate filters `CandVerify` applies (the §A.6
/// design-choice knobs; the label and degree filters are always on).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FilterOptions {
    /// Apply the maximum-neighbor-degree filter (Lemma A.1).
    pub use_mnd: bool,
    /// Apply the neighborhood-label-frequency filter (SAPPER \[24\]).
    pub use_nlf: bool,
    /// Apply the 2-hop label-ball / label-pair bloom filter (l2Match's
    /// neighboring-label index). Off by default: it pays off on workloads
    /// with diverse label pairs and is a no-op on label-sparse graphs.
    pub use_label_pair: bool,
}

impl Default for FilterOptions {
    /// MND + NLF on — the paper's configuration; label-pair off.
    fn default() -> Self {
        FilterOptions {
            use_mnd: true,
            use_nlf: true,
            use_label_pair: false,
        }
    }
}

/// Which CandVerify stage rejected a probe — only distinguished when the
/// `trace` feature classifies kills; the plain [`FilterContext::cand_verify`]
/// collapses all to `false`.
#[cfg(feature = "trace")]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FilterStage {
    Mnd,
    LabelPair,
    Nlf,
}

/// A memoized CandVerify verdict pulled out of a [`VerdictCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct CachedVerdict {
    /// Whether `(v, u)` passed CandVerify.
    pub(crate) passed: bool,
    /// When `!passed`: whether the MND stage rejected it.
    /// Preserved (with `failed_at_lp`) so traced refreshes attribute kills
    /// to the same stage the original computation did.
    pub(crate) failed_at_mnd: bool,
    /// When `!passed`: whether the label-pair stage (rather than NLF)
    /// rejected it.
    pub(crate) failed_at_lp: bool,
}

/// CandVerify (Algorithm 6) evaluated purely from stat tables — no graph
/// access. This is the single implementation behind
/// [`FilterContext::cand_verify`]; it is exposed separately so incremental
/// refresh ([`crate::refresh`]) can evaluate the *previous* epoch's verdict
/// of a pair from the retained old [`GraphStats`] handle, including pairs
/// the old build never consulted. Assumes the label pre-filter passed.
pub(crate) fn cand_verify_stats(
    q_stats: &GraphStats,
    g_stats: &GraphStats,
    options: FilterOptions,
    v: VertexId,
    u: VertexId,
) -> CachedVerdict {
    if options.use_mnd && g_stats.mnd[v as usize] < q_stats.mnd[u as usize] {
        return CachedVerdict {
            passed: false,
            failed_at_mnd: true,
            failed_at_lp: false,
        };
    }
    // Label-pair blooms between the constant-time MND probe and the NLF
    // merge scan: two AND-compares against the 2-hop masks.
    if options.use_label_pair && !g_stats.label_pairs.dominates(v, &q_stats.label_pairs, u) {
        return CachedVerdict {
            passed: false,
            failed_at_mnd: false,
            failed_at_lp: true,
        };
    }
    let passed = if !options.use_nlf {
        true
    } else {
        let q_nlf = &q_stats.nlf;
        NlfIndex::packed_dominates(g_stats.nlf.packed(v), q_nlf.packed(u))
            && (q_nlf.packed_exact(u)
                || NlfIndex::dominates(g_stats.nlf.signature(v), q_nlf.signature(u)))
    };
    CachedVerdict {
        passed,
        failed_at_mnd: false,
        failed_at_lp: false,
    }
}

/// Memoized CandVerify verdicts for one `(query, data-graph epoch,
/// FilterOptions)` binding, shared across successive CPI builds of the
/// same query so an incremental refresh recomputes only the verdicts a
/// [`GraphDelta`](cfl_graph::GraphDelta) could have changed.
///
/// CandVerify is a *pure* function of `v`'s data-side statistics (MND, NLF
/// signature) and `u`'s query-side statistics, so replaying a stored
/// verdict is exactly equivalent to recomputation — the refreshed CPI is
/// bit-identical to a cold rebuild by construction. The owner
/// ([`refresh`](crate::refresh)) must clear the columns of every dirty
/// data vertex via [`invalidate`](Self::invalidate) before reuse, and must
/// not reuse a cache across different queries, filter options, or data
/// graphs.
///
/// Layout: three bitsets of `nq × ⌈nv/64⌉` words — `checked` (a verdict
/// for `(u, v)` is present), `passed`, and `failed_mnd` (stage
/// attribution for failures). Concurrency: CPI construction probes from
/// multiple build threads, so all three are atomic. A writer publishes the
/// payload bits *before* setting the `checked` bit with `Release`; a
/// reader `Acquire`-loads `checked` first, so observing the bit guarantees
/// the payload stores are visible. Racing writers store the same pure
/// verdict, so duplicated `fetch_or`s are idempotent. (All orderings are
/// Acquire/Release — no `Relaxed`, so the protocol needs no loom-model
/// allowlisting; see `xtask lint`.)
pub struct VerdictCache {
    /// Words per query-vertex row: `⌈nv/64⌉`.
    words: usize,
    /// Bit `(u, v)` set ⇔ a verdict for `(u, v)` is stored.
    checked: Vec<AtomicU64>,
    /// Bit `(u, v)` set ⇔ the stored verdict is "passed".
    passed: Vec<AtomicU64>,
    /// Bit `(u, v)` set ⇔ the stored verdict failed at the MND stage.
    failed_mnd: Vec<AtomicU64>,
    /// Bit `(u, v)` set ⇔ the stored verdict failed at the label-pair stage.
    failed_lp: Vec<AtomicU64>,
}

impl VerdictCache {
    /// An empty cache for `nq` query vertices against `nv` data vertices.
    pub fn new(nq: usize, nv: usize) -> Self {
        let words = nv.div_ceil(64);
        let len = nq * words;
        let zeroed = || (0..len).map(|_| AtomicU64::new(0)).collect();
        VerdictCache {
            words,
            checked: zeroed(),
            passed: zeroed(),
            failed_mnd: zeroed(),
            failed_lp: zeroed(),
        }
    }

    /// Word index and bit mask addressing `(u, v)`.
    #[inline]
    fn slot(&self, u: VertexId, v: VertexId) -> (usize, u64) {
        (
            u as usize * self.words + (v as usize >> 6),
            1u64 << (v as usize & 63),
        )
    }

    /// The stored verdict for `(u, v)`, if one exists.
    #[inline]
    pub(crate) fn lookup(&self, u: VertexId, v: VertexId) -> Option<CachedVerdict> {
        let (idx, bit) = self.slot(u, v);
        // Acquire pairs with the Release `fetch_or` in `record`: seeing the
        // checked bit guarantees the payload bits below are visible.
        if self.checked[idx].load(Ordering::Acquire) & bit == 0 {
            return None;
        }
        Some(CachedVerdict {
            passed: self.passed[idx].load(Ordering::Acquire) & bit != 0,
            failed_at_mnd: self.failed_mnd[idx].load(Ordering::Acquire) & bit != 0,
            failed_at_lp: self.failed_lp[idx].load(Ordering::Acquire) & bit != 0,
        })
    }

    /// Stores a verdict for `(u, v)`. Idempotent under races because every
    /// writer computes the same pure verdict.
    #[inline]
    pub(crate) fn record(&self, u: VertexId, v: VertexId, verdict: CachedVerdict) {
        let (idx, bit) = self.slot(u, v);
        if verdict.passed {
            self.passed[idx].fetch_or(bit, Ordering::Release);
        } else if verdict.failed_at_mnd {
            self.failed_mnd[idx].fetch_or(bit, Ordering::Release);
        } else if verdict.failed_at_lp {
            self.failed_lp[idx].fetch_or(bit, Ordering::Release);
        }
        // Publish last: readers Acquire-load this word first.
        self.checked[idx].fetch_or(bit, Ordering::Release);
    }

    /// Forgets the verdicts of every query vertex against each data vertex
    /// in `dirty` (sorted, as [`AppliedDelta::dirty`] guarantees), so the
    /// next probe recomputes them against the refreshed statistics. Clears
    /// payload bits too: `record` can only OR bits in, so a stale "passed"
    /// bit would otherwise survive a flipped verdict.
    ///
    /// Takes `&mut self` — invalidation happens between builds, when the
    /// owner holds the cache exclusively — so dirty vertices sharing a
    /// 64-bit word are merged into one plain (non-atomic) masked store per
    /// query row instead of three read-modify-write ops per vertex. This
    /// keeps the retention fast path's fixed cost low.
    ///
    /// [`AppliedDelta::dirty`]: cfl_graph::AppliedDelta
    pub fn invalidate(&mut self, dirty: &[VertexId]) {
        debug_assert!(dirty.windows(2).all(|w| w[0] < w[1]));
        let rows = self.num_query_vertices();
        let mut i = 0;
        while i < dirty.len() {
            let word = dirty[i] as usize >> 6;
            let mut mask = !0u64;
            while i < dirty.len() && (dirty[i] as usize >> 6) == word {
                mask &= !(1u64 << (dirty[i] as usize & 63));
                i += 1;
            }
            for u in 0..rows {
                let idx = u * self.words + word;
                *self.checked[idx].get_mut() &= mask;
                *self.passed[idx].get_mut() &= mask;
                *self.failed_mnd[idx].get_mut() &= mask;
                *self.failed_lp[idx].get_mut() &= mask;
            }
        }
    }

    /// Number of query-vertex rows this cache was sized for.
    pub(crate) fn num_query_vertices(&self) -> usize {
        self.checked.len().checked_div(self.words).unwrap_or(0)
    }

    /// Number of data vertices a row can address (rounded up to the word).
    pub(crate) fn data_capacity(&self) -> usize {
        self.words * 64
    }
}

/// Candidate verification context binding a query to a data graph.
pub struct FilterContext<'a> {
    /// The query graph.
    pub q: &'a Graph,
    /// The data graph.
    pub g: &'a Graph,
    /// Query-side statistics.
    pub q_stats: &'a GraphStats,
    /// Data-side statistics.
    pub g_stats: &'a GraphStats,
    /// Enabled optional filters.
    pub options: FilterOptions,
    /// Memoized CandVerify verdicts; attached by incremental refresh
    /// ([`crate::refresh`]) so a rebuild replays stored verdicts instead of
    /// recomputing MND/NLF checks. `None` on ordinary one-shot runs.
    pub(crate) verdicts: Option<&'a VerdictCache>,
    /// Shared sink for construction-time pruning counters; populated by
    /// `prepare` when tracing a run, `None` otherwise (and absent entirely
    /// without the `trace` feature).
    #[cfg(feature = "trace")]
    pub(crate) build_trace: Option<&'a cfl_trace::BuildCounters>,
}

impl<'a> FilterContext<'a> {
    /// Binds the four pieces together with the default (full) filters.
    pub fn new(
        q: &'a Graph,
        g: &'a Graph,
        q_stats: &'a GraphStats,
        g_stats: &'a GraphStats,
    ) -> Self {
        Self::with_options(q, g, q_stats, g_stats, FilterOptions::default())
    }

    /// Binds with explicit filter options (for ablations).
    pub fn with_options(
        q: &'a Graph,
        g: &'a Graph,
        q_stats: &'a GraphStats,
        g_stats: &'a GraphStats,
        options: FilterOptions,
    ) -> Self {
        FilterContext {
            q,
            g,
            q_stats,
            g_stats,
            options,
            verdicts: None,
            #[cfg(feature = "trace")]
            build_trace: None,
        }
    }

    /// Attaches a verdict cache: CandVerify probes replay stored verdicts
    /// and record freshly computed ones. The caller guarantees the cache
    /// was built for this exact `(q, g, options)` binding and that columns
    /// of data vertices whose statistics changed have been
    /// [invalidated](VerdictCache::invalidate).
    #[must_use]
    pub(crate) fn with_verdicts(mut self, cache: &'a VerdictCache) -> Self {
        debug_assert!(cache.num_query_vertices() >= self.q.num_vertices());
        debug_assert!(cache.data_capacity() >= self.g.num_vertices());
        self.verdicts = Some(cache);
        self
    }

    /// Attaches a construction-counter sink: every kill the CPI build
    /// performs through this context is recorded into `counters`.
    #[cfg(feature = "trace")]
    #[must_use]
    pub(crate) fn with_trace(mut self, counters: &'a cfl_trace::BuildCounters) -> Self {
        self.build_trace = Some(counters);
        self
    }

    /// Records `v` into build counter `c` when a trace sink is attached.
    /// Compiles to nothing (arguments discarded) without the `trace`
    /// feature — call sites stay branch-free on default builds.
    #[inline(always)]
    #[allow(clippy::inline_always, unused_variables)]
    pub(crate) fn rec(&self, c: cfl_trace::BuildCounter, v: u64) {
        #[cfg(feature = "trace")]
        if let Some(t) = self.build_trace {
            t.add(c, v);
        }
    }

    /// Discards any kernel-dispatch tally left on this thread by earlier
    /// untraced work, so the next [`rec_kernel_tally`](Self::rec_kernel_tally)
    /// harvest covers exactly the section in between. Compiles to nothing
    /// without the `trace` feature.
    #[inline(always)]
    #[allow(clippy::inline_always)]
    pub(crate) fn reset_kernel_tally(&self) {
        #[cfg(feature = "trace")]
        {
            let _ = cfl_graph::intersect::tally::take();
        }
    }

    /// Drains this thread's kernel-dispatch tally into the attached build
    /// counters. Drains even when no sink is attached, so counts from an
    /// untraced run never leak into a later traced section on a reused
    /// pool thread. Compiles to nothing without the `trace` feature.
    #[inline(always)]
    #[allow(clippy::inline_always)]
    pub(crate) fn rec_kernel_tally(&self) {
        #[cfg(feature = "trace")]
        {
            let t = cfl_graph::intersect::tally::take();
            if let Some(sink) = self.build_trace {
                sink.add(cfl_trace::BuildCounter::MergeHits, t.merge);
                sink.add(cfl_trace::BuildCounter::GallopHits, t.gallop);
                sink.add(cfl_trace::BuildCounter::BitsetHits, t.bitset);
                sink.add(cfl_trace::BuildCounter::SimdHits, t.simd);
            }
        }
    }

    /// The label + degree pre-filter the construction loops apply inline
    /// (Algorithm 3, lines 1 and 12). The label test runs first: it
    /// rejects most probes against the smaller (hotter) label array
    /// without touching the CSR offsets the degree test reads.
    #[inline]
    pub fn label_degree_ok(&self, v: VertexId, u: VertexId) -> bool {
        self.g.label(v) == self.q.label(u) && self.g.degree(v) >= self.q.degree(u)
    }

    /// The CandVerify computation proper: MND filter then NLF filter,
    /// reporting the verdict plus stage attribution for failures. Pure in
    /// `v`'s data-side statistics and `u`'s query-side statistics — the
    /// property the [`VerdictCache`] memoization relies on.
    #[inline]
    fn cand_verify_compute(&self, v: VertexId, u: VertexId) -> CachedVerdict {
        cand_verify_stats(self.q_stats, self.g_stats, self.options, v, u)
    }

    /// `cand_verify_compute` through the attached [`VerdictCache`], when
    /// one is present: replay a stored verdict or compute-and-store.
    #[inline]
    fn cand_verify_memo(&self, v: VertexId, u: VertexId) -> CachedVerdict {
        match self.verdicts {
            None => self.cand_verify_compute(v, u),
            Some(cache) => {
                if let Some(hit) = cache.lookup(u, v) {
                    return hit;
                }
                let verdict = self.cand_verify_compute(v, u);
                cache.record(u, v, verdict);
                verdict
            }
        }
    }

    /// `CandVerify` (Algorithm 6): MND filter then NLF filter. Assumes the
    /// label + degree pre-filter already passed.
    ///
    /// The NLF test goes through the packed 64-bit summaries first: one
    /// AND+compare rejects most non-candidates, and when the query vertex's
    /// summary is exact (≤ 16 labels, per-label counts ≤ 4 — the common
    /// case for the paper's workloads) it also *accepts* without ever
    /// touching the `(label, count)` merge scan.
    #[inline]
    pub fn cand_verify(&self, v: VertexId, u: VertexId) -> bool {
        self.cand_verify_memo(v, u).passed
    }

    /// Like [`cand_verify`](Self::cand_verify) but reporting *which* stage
    /// rejected the probe. Trace-only: the stage split exists so kill
    /// counters can attribute prunes to the MND vs. NLF filter. The keep
    /// decision is `result.is_ok()`, and the verdict comes from the same
    /// `cand_verify_compute` (possibly memoized — stage attribution is
    /// stored alongside the verdict), so classification never changes
    /// which candidates survive.
    #[cfg(feature = "trace")]
    fn cand_verify_stage(&self, v: VertexId, u: VertexId) -> Result<(), FilterStage> {
        match self.cand_verify_memo(v, u) {
            CachedVerdict { passed: true, .. } => Ok(()),
            CachedVerdict {
                failed_at_mnd: true,
                ..
            } => Err(FilterStage::Mnd),
            CachedVerdict {
                failed_at_lp: true, ..
            } => Err(FilterStage::LabelPair),
            _ => Err(FilterStage::Nlf),
        }
    }

    /// `list.retain(|&v| self.cand_verify(v, u))`, with per-stage kill
    /// counting when a trace sink is attached. Without the `trace` feature
    /// this compiles to exactly the plain retain.
    pub(crate) fn retain_verified(&self, list: &mut Vec<VertexId>, u: VertexId) {
        #[cfg(feature = "trace")]
        if let Some(t) = self.build_trace {
            let mut mnd: u64 = 0;
            let mut lp: u64 = 0;
            let mut nlf: u64 = 0;
            list.retain(|&v| match self.cand_verify_stage(v, u) {
                Ok(()) => true,
                Err(FilterStage::Mnd) => {
                    mnd += 1;
                    false
                }
                Err(FilterStage::LabelPair) => {
                    lp += 1;
                    false
                }
                Err(FilterStage::Nlf) => {
                    nlf += 1;
                    false
                }
            });
            t.add(cfl_trace::BuildCounter::MndKills, mnd);
            t.add(cfl_trace::BuildCounter::LabelPairKills, lp);
            t.add(cfl_trace::BuildCounter::NlfKills, nlf);
            return;
        }
        list.retain(|&v| self.cand_verify(v, u));
    }

    /// Full candidate test: label, degree, MND, NLF.
    pub fn is_candidate(&self, v: VertexId, u: VertexId) -> bool {
        self.label_degree_ok(v, u) && self.cand_verify(v, u)
    }

    /// The light candidates of `u`: vertices of `G` with label `l_q(u)`
    /// and degree at least `d_q(u)`, yielded in `(degree desc, id asc)`
    /// order — the matching prefix of the label index's degree-sorted
    /// span, so iteration costs the result size, not the label frequency.
    /// Callers needing ascending vertex order must sort.
    pub fn light_candidates(&self, u: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.g_stats
            .label_index
            .vertices_with_min_degree(self.q.label(u), self.q.degree(u) as u32)
            .iter()
            .copied()
    }

    /// Exact size of [`light_candidates`](Self::light_candidates) without
    /// iterating it: one binary search over the label index's degree-sorted
    /// span (root selection ranks every eligible vertex by this count, so
    /// the scan-free form keeps selection sublinear in label frequency).
    #[inline]
    pub fn light_candidate_count(&self, u: VertexId) -> usize {
        self.g_stats
            .label_index
            .count_with_min_degree(self.q.label(u), self.q.degree(u) as u32)
    }

    /// Label frequency of `l` in the data graph.
    pub fn label_frequency(&self, l: Label) -> usize {
        self.g_stats.label_index.frequency(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfl_graph::graph_from_edges;

    fn ctx_graphs() -> (Graph, Graph) {
        // Query: triangle A-B-C (0,1,2 labels 0,1,2).
        let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]).unwrap();
        // Data: triangle A-B-C (0,1,2) plus a pendant A (3) attached to 1,
        // and an isolated-ish A (4) attached only to a B (5) of degree 1.
        let g = graph_from_edges(
            &[0, 1, 2, 0, 0, 1],
            &[(0, 1), (1, 2), (2, 0), (1, 3), (4, 5)],
        )
        .unwrap();
        (q, g)
    }

    #[test]
    fn filter_options_disable_pruning() {
        let (q, g) = ctx_graphs();
        let qs = GraphStats::build(&q);
        let gs = GraphStats::build(&g);
        let off = FilterOptions {
            use_mnd: false,
            use_nlf: false,
            use_label_pair: false,
        };
        let ctx = FilterContext::with_options(&q, &g, &qs, &gs, off);
        // With both optional filters off, CandVerify accepts anything that
        // passed label+degree.
        for v in g.vertices() {
            for u in q.vertices() {
                assert!(ctx.cand_verify(v, u));
            }
        }
    }

    #[test]
    fn filters_accept_true_candidate() {
        let (q, g) = ctx_graphs();
        let qs = GraphStats::build(&q);
        let gs = GraphStats::build(&g);
        let ctx = FilterContext::new(&q, &g, &qs, &gs);
        assert!(ctx.is_candidate(0, 0)); // data A in triangle maps query A
        assert!(ctx.is_candidate(1, 1));
        assert!(ctx.is_candidate(2, 2));
    }

    #[test]
    fn degree_filter_rejects() {
        let (q, g) = ctx_graphs();
        let qs = GraphStats::build(&q);
        let gs = GraphStats::build(&g);
        let ctx = FilterContext::new(&q, &g, &qs, &gs);
        // Data vertex 3 (label A) has degree 1 < d_q(0)=2.
        assert!(!ctx.is_candidate(3, 0));
    }

    #[test]
    fn nlf_filter_rejects() {
        // Query A with neighbors {B, C}; data A (vertex 4) with neighbor {B}
        // of sufficient degree would pass label/degree if degrees matched,
        // but NLF requires a C neighbor.
        let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (0, 2)]).unwrap();
        let g = graph_from_edges(&[0, 1, 1], &[(0, 1), (0, 2)]).unwrap();
        let qs = GraphStats::build(&q);
        let gs = GraphStats::build(&g);
        let ctx = FilterContext::new(&q, &g, &qs, &gs);
        assert!(ctx.label_degree_ok(0, 0));
        assert!(!ctx.cand_verify(0, 0)); // no C-labeled neighbor
    }

    #[test]
    fn mnd_filter_rejects() {
        // Query: path B(1)-A(0)-B(2), plus B(1) has 2 more neighbors → query
        // A has a neighbor of degree 3, mnd_q(A) = 3.
        let q = graph_from_edges(&[0, 1, 1, 2, 2], &[(0, 1), (0, 2), (1, 3), (1, 4)]).unwrap();
        // Data: A whose B-neighbors have degree ≤ 2 → MND too small.
        let g = graph_from_edges(&[0, 1, 1, 2], &[(0, 1), (0, 2), (1, 3)]).unwrap();
        let qs = GraphStats::build(&q);
        let gs = GraphStats::build(&g);
        let ctx = FilterContext::new(&q, &g, &qs, &gs);
        assert!(gs.mnd[0] < qs.mnd[0]);
        assert!(!ctx.cand_verify(0, 0));
    }

    #[test]
    fn label_pair_filter_rejects_missing_pair() {
        // Query: triangle with labels 0,1,2. Data: the same triangle plus a
        // label-2 pendant on vertex 0. The pendant's 1-hop edge set lacks
        // the (1,2) label pair the query's label-2 vertex requires.
        let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let g = graph_from_edges(&[0, 1, 2, 2], &[(0, 1), (1, 2), (0, 2), (3, 0)]).unwrap();
        let qs = GraphStats::build(&q);
        let gs = GraphStats::build(&g);
        let lp_only = FilterOptions {
            use_mnd: false,
            use_nlf: false,
            use_label_pair: true,
        };
        let ctx = FilterContext::with_options(&q, &g, &qs, &gs, lp_only);
        let v = cand_verify_stats(&qs, &gs, lp_only, 3, 2);
        assert!(!v.passed && v.failed_at_lp && !v.failed_at_mnd);
        assert!(ctx.cand_verify(2, 2), "true image must survive");
        // With the filter off the pendant sails through.
        let off = FilterOptions {
            use_label_pair: false,
            ..lp_only
        };
        assert!(cand_verify_stats(&qs, &gs, off, 3, 2).passed);
    }

    #[test]
    fn light_candidates_filter_by_label_and_degree() {
        let (q, g) = ctx_graphs();
        let qs = GraphStats::build(&q);
        let gs = GraphStats::build(&g);
        let ctx = FilterContext::new(&q, &g, &qs, &gs);
        let c: Vec<_> = ctx.light_candidates(0).collect();
        // Label-A vertices: {0, 3, 4}; degree ≥ 2 keeps only 0.
        assert_eq!(c, vec![0]);
        assert_eq!(ctx.label_frequency(Label(0)), 3);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn retain_verified_matches_cand_verify_and_counts_kills() {
        let (q, g) = ctx_graphs();
        let qs = GraphStats::build(&q);
        let gs = GraphStats::build(&g);
        let counters = cfl_trace::BuildCounters::default();
        let traced = FilterContext::new(&q, &g, &qs, &gs).with_trace(&counters);
        let plain = FilterContext::new(&q, &g, &qs, &gs);
        for u in q.vertices() {
            let all: Vec<_> = g
                .vertices()
                .filter(|&v| plain.label_degree_ok(v, u))
                .collect();
            let mut kept = all.clone();
            traced.retain_verified(&mut kept, u);
            let expect: Vec<_> = all
                .iter()
                .copied()
                .filter(|&v| plain.cand_verify(v, u))
                .collect();
            assert_eq!(kept, expect, "u{u}");
        }
        let snap = counters.snapshot();
        // Every kill was attributed to exactly one stage, and counts are
        // bounded by the number of probes.
        let probes: u64 = q
            .vertices()
            .map(|u| {
                g.vertices()
                    .filter(|&v| plain.label_degree_ok(v, u))
                    .count() as u64
            })
            .sum();
        assert!(snap.mnd_kills + snap.nlf_kills <= probes);
    }

    #[test]
    fn verdict_cache_round_trips_and_invalidates() {
        let mut cache = VerdictCache::new(3, 70); // two words per row
        assert_eq!(cache.lookup(1, 65), None);
        cache.record(
            1,
            65,
            CachedVerdict {
                passed: false,
                failed_at_mnd: true,
                failed_at_lp: false,
            },
        );
        cache.record(
            2,
            65,
            CachedVerdict {
                passed: true,
                failed_at_mnd: false,
                failed_at_lp: false,
            },
        );
        assert_eq!(
            cache.lookup(1, 65),
            Some(CachedVerdict {
                passed: false,
                failed_at_mnd: true,
                failed_at_lp: false,
            })
        );
        assert_eq!(
            cache.lookup(2, 65),
            Some(CachedVerdict {
                passed: true,
                failed_at_mnd: false,
                failed_at_lp: false,
            })
        );
        // Same data vertex, other rows untouched.
        assert_eq!(cache.lookup(0, 65), None);
        // Invalidation clears every row's column, payload bits included,
        // so a re-recorded opposite verdict reads back correctly.
        cache.invalidate(&[65]);
        assert_eq!(cache.lookup(1, 65), None);
        assert_eq!(cache.lookup(2, 65), None);
        cache.record(
            2,
            65,
            CachedVerdict {
                passed: false,
                failed_at_mnd: false,
                failed_at_lp: true,
            },
        );
        assert_eq!(
            cache.lookup(2, 65),
            Some(CachedVerdict {
                passed: false,
                failed_at_mnd: false,
                failed_at_lp: true,
            })
        );
    }

    #[test]
    fn memoized_cand_verify_matches_plain() {
        let (q, g) = ctx_graphs();
        let qs = GraphStats::build(&q);
        let gs = GraphStats::build(&g);
        let cache = VerdictCache::new(q.num_vertices(), g.num_vertices());
        let plain = FilterContext::new(&q, &g, &qs, &gs);
        let memo = FilterContext::new(&q, &g, &qs, &gs).with_verdicts(&cache);
        // Two passes: the first computes-and-records, the second replays.
        for _ in 0..2 {
            for u in q.vertices() {
                for v in g.vertices() {
                    assert_eq!(memo.cand_verify(v, u), plain.cand_verify(v, u), "v{v} u{u}");
                }
            }
        }
    }

    #[test]
    fn light_candidate_count_matches_iterator() {
        let (q, g) = ctx_graphs();
        let qs = GraphStats::build(&q);
        let gs = GraphStats::build(&g);
        let ctx = FilterContext::new(&q, &g, &qs, &gs);
        for u in q.vertices() {
            assert_eq!(
                ctx.light_candidate_count(u),
                ctx.light_candidates(u).count(),
                "u{u}"
            );
        }
    }
}
