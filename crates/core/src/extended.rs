//! Edge-labeled and directed subgraph matching (paper §2's extension
//! claim), implemented by the subdivision reduction of
//! [`cfl_graph::transform`] plus the ordinary CFL-Match engine.

use cfl_graph::transform::{encode, EdgeListGraph, EncodingSpace};
use cfl_graph::VertexId;

use crate::config::MatchConfig;
use crate::error::Error;
use crate::result::{Embedding, MatchReport};

/// Enumerates embeddings of the edge-labeled (and optionally directed)
/// query `q` in data graph `g`: mappings of *original* query vertices that
/// preserve vertex labels, edge labels, and (when `directed`) edge
/// orientation.
pub fn find_embeddings_extended(
    q: &EdgeListGraph,
    g: &EdgeListGraph,
    directed: bool,
    config: &MatchConfig,
    mut sink: impl FnMut(&[VertexId]) -> bool,
) -> Result<MatchReport, Error> {
    let space = EncodingSpace::covering(q, g, directed);
    let eq = encode(q, &space);
    let eg = encode(g, &space);
    crate::exec::find_embeddings(&eq.graph, &eg.graph, config, |mapping| {
        sink(eq.project(mapping))
    })
}

/// Collects embeddings (projected to original query vertices).
pub fn collect_embeddings_extended(
    q: &EdgeListGraph,
    g: &EdgeListGraph,
    directed: bool,
    config: &MatchConfig,
) -> Result<(Vec<Embedding>, MatchReport), Error> {
    let mut out = Vec::new();
    let report = find_embeddings_extended(q, g, directed, config, |m| {
        out.push(Embedding {
            mapping: m.to_vec(),
        });
        true
    })?;
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfl_graph::transform::LabeledEdge;
    use cfl_graph::Label;

    fn elg(labels: &[u32], edges: &[(u32, u32, u32)]) -> EdgeListGraph {
        EdgeListGraph {
            vertex_labels: labels.iter().map(|&l| Label(l)).collect(),
            edges: edges
                .iter()
                .map(|&(from, to, label)| LabeledEdge {
                    from,
                    to,
                    label: Label(label),
                })
                .collect(),
        }
    }

    #[test]
    fn edge_labels_constrain_matching() {
        // Query: A -x- B. Data: A -x- B and A -y- B.
        let q = elg(&[0, 1], &[(0, 1, 0)]);
        let g = elg(&[0, 1, 0, 1], &[(0, 1, 0), (2, 3, 1)]);
        let (embs, report) =
            collect_embeddings_extended(&q, &g, false, &MatchConfig::exhaustive()).unwrap();
        assert_eq!(embs.len(), 1, "only the x-labeled edge matches");
        assert_eq!(embs[0].mapping, vec![0, 1]);
        assert!(report.outcome.is_complete());
    }

    #[test]
    fn direction_constrains_matching() {
        // Query: A → A. Data: 0 → 1 (one directed edge).
        let q = elg(&[0, 0], &[(0, 1, 0)]);
        let g = elg(&[0, 0], &[(0, 1, 0)]);
        let (embs, _) =
            collect_embeddings_extended(&q, &g, true, &MatchConfig::exhaustive()).unwrap();
        // Only the orientation-preserving mapping (0→0, 1→1) survives; the
        // undirected interpretation would also allow the swap.
        assert_eq!(embs.len(), 1);
        assert_eq!(embs[0].mapping, vec![0, 1]);

        let (undirected, _) =
            collect_embeddings_extended(&q, &g, false, &MatchConfig::exhaustive()).unwrap();
        assert_eq!(undirected.len(), 2, "undirected allows both orientations");
    }

    #[test]
    fn directed_triangle() {
        // Query: directed 3-cycle. Data: one directed 3-cycle plus one
        // anti-oriented chord.
        let q = elg(&[0, 0, 0], &[(0, 1, 0), (1, 2, 0), (2, 0, 0)]);
        let g = elg(&[0, 0, 0], &[(0, 1, 0), (1, 2, 0), (2, 0, 0)]);
        let (embs, _) =
            collect_embeddings_extended(&q, &g, true, &MatchConfig::exhaustive()).unwrap();
        // The directed cycle has exactly 3 rotational automorphisms (no
        // reflections — those reverse orientation).
        assert_eq!(embs.len(), 3);
    }

    #[test]
    fn mixed_edge_labels_and_direction() {
        // Query: A →x→ B →y→ C. Data has the exact chain plus a decoy with
        // swapped edge labels.
        let q = elg(&[0, 1, 2], &[(0, 1, 0), (1, 2, 1)]);
        let g = elg(
            &[0, 1, 2, 0, 1, 2],
            &[(0, 1, 0), (1, 2, 1), (3, 4, 1), (4, 5, 0)],
        );
        let (embs, _) =
            collect_embeddings_extended(&q, &g, true, &MatchConfig::exhaustive()).unwrap();
        assert_eq!(embs.len(), 1);
        assert_eq!(embs[0].mapping, vec![0, 1, 2]);
    }
}
