//! CPI-based matching order selection (§4.2.1, Algorithm 2).
//!
//! The matching order is *path-based*: the root-to-leaf paths of the CPI's
//! BFS tree (restricted to the structure being matched) are ordered
//! greedily, then concatenated with shared prefixes removed. The first path
//! minimizes `c(π)/|NT(π)|` — embedding count discounted by non-tree-edge
//! pruning opportunities — and each next path minimizes `c(π^u)/|u.C|`
//! where `u = π.p` is the connection vertex of `π` to the sequence chosen
//! so far. `c(π)` is estimated exactly over the CPI by dynamic programming
//! in time linear in the adjacency lists along the path.
//!
//! Forest trees are ordered among themselves by their estimated CPI
//! embedding counts, ascending (§4.3), before their paths are ordered the
//! same way.

use cfl_graph::{classify_edge, core_numbers, EdgeKind, Graph, VertexId};

use crate::config::{DecompositionMode, OrderStrategy};
use crate::cpi::Cpi;
use crate::decompose::{CflDecomposition, Role};

/// One position of the matching order.
#[derive(Clone, Debug)]
pub struct OrderedVertex {
    /// The query vertex.
    pub vertex: VertexId,
    /// Its CPI (BFS tree) parent — candidates are drawn from the parent's
    /// adjacency row. `None` only for the root (position 0).
    pub parent: Option<VertexId>,
    /// Earlier-ordered query neighbors other than `parent`: the non-tree
    /// edges validated against `G` during enumeration (`ValidateNT`).
    pub checks: Vec<VertexId>,
}

/// The full matching plan: core and forest orders plus the leaf set.
#[derive(Clone, Debug)]
pub struct OrderPlan {
    /// Core then forest vertices, in matching order.
    pub vertices: Vec<OrderedVertex>,
    /// How many leading entries of `vertices` are core vertices.
    pub core_len: usize,
    /// Leaf query vertices, matched last by leaf-match (empty unless the
    /// decomposition mode is [`DecompositionMode::CoreForestLeaf`]).
    pub leaves: Vec<VertexId>,
}

impl OrderPlan {
    /// The matching order as plain query-vertex ids (core + forest + leaves).
    pub fn sequence(&self) -> Vec<VertexId> {
        self.vertices
            .iter()
            .map(|ov| ov.vertex)
            .chain(self.leaves.iter().copied())
            .collect()
    }
}

/// Computes the matching order for `q` over the given CPI and
/// decomposition, using the paper's greedy path rule.
pub fn compute_order(q: &Graph, cpi: &Cpi, decomp: &CflDecomposition) -> OrderPlan {
    compute_order_with(q, cpi, decomp, OrderStrategy::Greedy)
}

/// [`compute_order`] with an explicit path-ordering strategy.
pub fn compute_order_with(
    q: &Graph,
    cpi: &Cpi,
    decomp: &CflDecomposition,
    strategy: OrderStrategy,
) -> OrderPlan {
    let n = q.num_vertices();
    let mut in_seq = vec![false; n];
    let mut seq: Vec<VertexId> = Vec::with_capacity(n);

    // Hierarchical strategy (§7 future work): rank the first core path by
    // the deepest core number it reaches.
    let coreness: Option<Vec<u32>> = match strategy {
        OrderStrategy::Greedy | OrderStrategy::Arbitrary => None,
        OrderStrategy::CoreHierarchy => Some(core_numbers(q)),
    };
    let arbitrary = strategy == OrderStrategy::Arbitrary;

    // --- Core order ---
    let in_core: Vec<bool> = (0..n as VertexId).map(|v| decomp.is_core(v)).collect();
    let core_paths = paths_in_subset(cpi, cpi.root(), &in_core);
    if arbitrary {
        append_paths_arbitrary(core_paths, &mut seq, &mut in_seq);
    } else {
        order_paths_with(
            q,
            cpi,
            core_paths,
            true,
            coreness.as_deref(),
            &mut seq,
            &mut in_seq,
        );
    }
    let core_len = seq.len();
    debug_assert_eq!(core_len, decomp.core.len());

    // --- Forest order: trees ascending by estimated embedding count ---
    let in_forest_part: Vec<bool> = (0..n as VertexId)
        .map(|v| decomp.roles[v as usize] == Role::Forest)
        .collect();
    let mut trees: Vec<(f64, usize)> = Vec::new();
    for (i, t) in decomp.trees.iter().enumerate() {
        // Restrict to forest-role members (leaves excluded in CFL mode).
        let mut subset = vec![false; n];
        subset[t.connection as usize] = true;
        let mut any = false;
        for &m in &t.members {
            if in_forest_part[m as usize] {
                subset[m as usize] = true;
                any = true;
            }
        }
        if !any {
            continue; // tree is all leaves
        }
        let est = tree_embedding_estimate(cpi, t.connection, &subset);
        trees.push((est, i));
    }
    trees.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    for (_, ti) in trees {
        let t = &decomp.trees[ti];
        let mut subset = vec![false; n];
        subset[t.connection as usize] = true;
        for &m in &t.members {
            if in_forest_part[m as usize] {
                subset[m as usize] = true;
            }
        }
        let paths = paths_in_subset(cpi, t.connection, &subset);
        if arbitrary {
            append_paths_arbitrary(paths, &mut seq, &mut in_seq);
        } else {
            order_paths(q, cpi, paths, false, &mut seq, &mut in_seq);
        }
        // (The hierarchy heuristic only affects the core: forest trees have
        // uniform core number 1.)
    }

    // --- Assemble ordered vertices with their validation checks ---
    let mut vertices = Vec::with_capacity(seq.len());
    let mut pos_in_seq = vec![usize::MAX; n];
    for (i, &v) in seq.iter().enumerate() {
        pos_in_seq[v as usize] = i;
    }
    for (i, &u) in seq.iter().enumerate() {
        let parent = cpi.parent(u);
        if let Some(p) = parent {
            debug_assert!(
                pos_in_seq[p as usize] < i,
                "CPI parent of u{u} must precede it in the order"
            );
        }
        let checks: Vec<VertexId> = q
            .neighbors(u)
            .iter()
            .copied()
            .filter(|&w| pos_in_seq[w as usize] < i && Some(w) != parent)
            .collect();
        vertices.push(OrderedVertex {
            vertex: u,
            parent,
            checks,
        });
    }

    // Plan steps plus leaves partition V(q) — checked in full (duplicates,
    // ranges, phases) by cfl-verify's order checks.
    debug_assert_eq!(vertices.len() + decomp.leaves.len(), n);

    OrderPlan {
        vertices,
        core_len,
        leaves: decomp.leaves.clone(),
    }
}

/// Appends paths in discovery order without any ranking — the
/// [`OrderStrategy::Arbitrary`] ablation baseline.
fn append_paths_arbitrary(paths: Vec<Vec<VertexId>>, seq: &mut Vec<VertexId>, in_seq: &mut [bool]) {
    for path in paths {
        for v in path {
            if !in_seq[v as usize] {
                in_seq[v as usize] = true;
                seq.push(v);
            }
        }
    }
}

/// Root-to-leaf paths of the CPI tree restricted to `subset` (which must be
/// closed under tree parents within the structure and contain `root`).
fn paths_in_subset(cpi: &Cpi, root: VertexId, subset: &[bool]) -> Vec<Vec<VertexId>> {
    debug_assert!(subset[root as usize]);
    let mut paths = Vec::new();
    let mut stack: Vec<(VertexId, Vec<VertexId>)> = vec![(root, vec![root])];
    while let Some((v, path)) = stack.pop() {
        let kids: Vec<VertexId> = cpi
            .tree
            .children(v)
            .iter()
            .copied()
            .filter(|&c| subset[c as usize])
            .collect();
        if kids.is_empty() {
            paths.push(path);
        } else {
            for c in kids {
                let mut p = path.clone();
                p.push(c);
                stack.push((c, p));
            }
        }
    }
    paths
}

/// Per-path suffix embedding counts `c(π^{w_j})` via the DP of §4.2.1.
fn path_suffix_counts(cpi: &Cpi, path: &[VertexId]) -> Vec<f64> {
    let k = path.len();
    // counts[j][i] = embeddings of the suffix starting at path[j] when
    // path[j] maps to its i-th candidate.
    let last = path[k - 1];
    let mut counts: Vec<f64> = vec![1.0; cpi.candidates(last).len()];
    let mut suffix = vec![0.0f64; k];
    suffix[k - 1] = counts.iter().sum();
    for j in (0..k - 1).rev() {
        let u = path[j];
        let child = path[j + 1];
        let mut up: Vec<f64> = Vec::with_capacity(cpi.candidates(u).len());
        for i in 0..cpi.candidates(u).len() {
            let s: f64 = cpi.row(child, i).iter().map(|&p| counts[p as usize]).sum();
            up.push(s);
        }
        counts = up;
        suffix[j] = counts.iter().sum();
    }
    suffix
}

/// Number of non-tree edges (w.r.t. the CPI's BFS tree) incident to at
/// least one vertex of `path` — `|NT(π)|` of Algorithm 2.
fn non_tree_edges_of_path(q: &Graph, cpi: &Cpi, path: &[VertexId]) -> usize {
    let mut on_path = vec![false; q.num_vertices()];
    for &v in path {
        on_path[v as usize] = true;
    }
    let mut count = 0;
    for &u in path {
        for &w in q.neighbors(u) {
            if classify_edge(&cpi.tree, u, w) != EdgeKind::Tree {
                // Count each edge once: internal edges when u < w, external
                // edges from the path endpoint only.
                if !on_path[w as usize] || u < w {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Algorithm 2: greedily orders `paths` and appends their unseen suffixes
/// to `seq`. `use_nt_discount` applies the first-path `c(π)/|NT(π)|`
/// discount (core matching); forest paths have no non-tree edges.
fn order_paths(
    q: &Graph,
    cpi: &Cpi,
    paths: Vec<Vec<VertexId>>,
    use_nt_discount: bool,
    seq: &mut Vec<VertexId>,
    in_seq: &mut [bool],
) {
    order_paths_with(q, cpi, paths, use_nt_discount, None, seq, in_seq);
}

fn order_paths_with(
    q: &Graph,
    cpi: &Cpi,
    paths: Vec<Vec<VertexId>>,
    use_nt_discount: bool,
    coreness: Option<&[u32]>,
    seq: &mut Vec<VertexId>,
    in_seq: &mut [bool],
) {
    if paths.is_empty() {
        return;
    }
    let suffix_counts: Vec<Vec<f64>> = paths.iter().map(|p| path_suffix_counts(cpi, p)).collect();
    let mut remaining: Vec<usize> = (0..paths.len()).collect();

    // First path (only when the sequence is empty; otherwise every path
    // already connects to the sequence).
    if seq.is_empty() {
        let (best_idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(ri, &pi)| {
                let c = suffix_counts[pi][0];
                let nt = if use_nt_discount {
                    non_tree_edges_of_path(q, cpi, &paths[pi]).max(1) as f64
                } else {
                    1.0
                };
                // Hierarchical tiebreak: deeper-core paths first. Depth is
                // negated so the min-selection prefers larger core numbers.
                let depth = coreness.map_or(0, |cn| {
                    paths[pi].iter().map(|&v| cn[v as usize]).max().unwrap_or(0)
                }) as f64;
                (ri, (-depth, c / nt))
            })
            .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0).then(a.1 .1.total_cmp(&b.1 .1)))
            .unwrap_or_else(|| unreachable!("paths is non-empty"));
        let pi = remaining.swap_remove(best_idx);
        for &v in &paths[pi] {
            if !in_seq[v as usize] {
                in_seq[v as usize] = true;
                seq.push(v);
            }
        }
    }

    while !remaining.is_empty() {
        let mut best: Option<(usize, f64)> = None;
        for (ri, &pi) in remaining.iter().enumerate() {
            let path = &paths[pi];
            // Connection vertex: last path vertex already in the sequence
            // (paths share a prefix with it). Position j.
            let Some(j) = path.iter().rposition(|&v| in_seq[v as usize]) else {
                unreachable!("paths share at least the subtree root with seq");
            };
            if j == path.len() - 1 {
                // Entire path already placed (can happen when paths overlap).
                if best.as_ref().is_none_or(|&(_, s)| 0.0 < s) {
                    best = Some((ri, 0.0));
                }
                continue;
            }
            let u = path[j];
            let score = suffix_counts[pi][j] / (cpi.candidates(u).len().max(1)) as f64;
            if best.as_ref().is_none_or(|&(_, s)| score < s) {
                best = Some((ri, score));
            }
        }
        let Some((ri, _)) = best else {
            unreachable!("remaining is non-empty");
        };
        let pi = remaining.swap_remove(ri);
        for &v in &paths[pi] {
            if !in_seq[v as usize] {
                in_seq[v as usize] = true;
                seq.push(v);
            }
        }
    }
}

/// Estimated number of CPI embeddings of the subtree rooted at `root`
/// restricted to `subset` (product-form DP over children; §4.3).
pub fn tree_embedding_estimate(cpi: &Cpi, root: VertexId, subset: &[bool]) -> f64 {
    fn rec(cpi: &Cpi, u: VertexId, subset: &[bool]) -> Vec<f64> {
        let kids: Vec<VertexId> = cpi
            .tree
            .children(u)
            .iter()
            .copied()
            .filter(|&c| subset[c as usize])
            .collect();
        let m = cpi.candidates(u).len();
        let mut counts = vec![1.0f64; m];
        for c in kids {
            let child_counts = rec(cpi, c, subset);
            for (i, cnt) in counts.iter_mut().enumerate() {
                let s: f64 = cpi
                    .row(c, i)
                    .iter()
                    .map(|&p| child_counts[p as usize])
                    .sum();
                *cnt *= s;
            }
        }
        counts
    }
    rec(cpi, root, subset).iter().sum()
}

/// Computes an order for an arbitrary decomposition mode: convenience
/// wrapper used by the engine.
pub fn plan_for_mode(
    q: &Graph,
    cpi: &Cpi,
    decomp: &CflDecomposition,
    _mode: DecompositionMode,
) -> OrderPlan {
    compute_order(q, cpi, decomp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CpiMode, DecompositionMode};
    use crate::filters::{FilterContext, GraphStats};
    use cfl_graph::graph_from_edges;

    fn setup(
        q_labels: &[u32],
        q_edges: &[(u32, u32)],
        g_labels: &[u32],
        g_edges: &[(u32, u32)],
        root: u32,
        mode: DecompositionMode,
    ) -> (Graph, Cpi, CflDecomposition) {
        let q = graph_from_edges(q_labels, q_edges).unwrap();
        let g = graph_from_edges(g_labels, g_edges).unwrap();
        let qs = GraphStats::build(&q);
        let gs = GraphStats::build(&g);
        let ctx = FilterContext::new(&q, &g, &qs, &gs);
        let cpi = Cpi::build(&ctx, root, CpiMode::TopDownRefined);
        let decomp = CflDecomposition::compute(&q, root, mode);
        (q, cpi, decomp)
    }

    #[test]
    fn order_is_connected_and_complete() {
        // Figure 1(a)-style query.
        let (q, cpi, decomp) = setup(
            &[0, 1, 2, 3, 4, 5],
            &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (1, 4)],
            &[0, 1, 2, 3, 4, 5, 4],
            &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (1, 4), (0, 6)],
            0,
            DecompositionMode::CoreForestLeaf,
        );
        let plan = compute_order(&q, &cpi, &decomp);
        let seq = plan.sequence();
        assert_eq!(seq.len(), q.num_vertices());
        let mut seen = std::collections::HashSet::new();
        for ov in &plan.vertices {
            if let Some(p) = ov.parent {
                assert!(seen.contains(&p), "parent of {} not yet matched", ov.vertex);
            }
            for &c in &ov.checks {
                assert!(seen.contains(&c));
            }
            seen.insert(ov.vertex);
        }
        // Core = {0, 1, 4} must come first.
        let core_set: Vec<_> = seq[..plan.core_len].to_vec();
        let mut sorted = core_set.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 4]);
        // Leaves {3, 5} last.
        let mut leaves = plan.leaves.clone();
        leaves.sort_unstable();
        assert_eq!(leaves, vec![3, 5]);
    }

    #[test]
    fn nt_checks_present_for_core_cycle() {
        // 4-cycle: whichever order, the last core vertex has a non-tree check.
        let (q, cpi, decomp) = setup(
            &[0, 1, 0, 1],
            &[(0, 1), (1, 2), (2, 3), (3, 0)],
            &[0, 1, 0, 1],
            &[(0, 1), (1, 2), (2, 3), (3, 0)],
            0,
            DecompositionMode::CoreForestLeaf,
        );
        let plan = compute_order(&q, &cpi, &decomp);
        let total_checks: usize = plan.vertices.iter().map(|ov| ov.checks.len()).sum();
        assert_eq!(total_checks, 1, "exactly one non-tree edge in a 4-cycle");
    }

    #[test]
    fn match_mode_orders_everything_as_core() {
        let (q, cpi, decomp) = setup(
            &[0, 1, 2, 3],
            &[(0, 1), (1, 2), (1, 3)],
            &[0, 1, 2, 3],
            &[(0, 1), (1, 2), (1, 3)],
            0,
            DecompositionMode::None,
        );
        let plan = compute_order(&q, &cpi, &decomp);
        assert_eq!(plan.core_len, 4);
        assert!(plan.leaves.is_empty());
    }

    #[test]
    fn tree_estimate_counts_simple_star() {
        // Query star: center 0 (label 0), spokes 1, 2 (label 1): matched on
        // data star with 3 spokes → CPI tree embeddings = 3 * 3 = 9
        // (tree DP does not enforce injectivity).
        let (_, cpi, _) = setup(
            &[0, 1, 1],
            &[(0, 1), (0, 2)],
            &[0, 1, 1, 1],
            &[(0, 1), (0, 2), (0, 3)],
            0,
            DecompositionMode::CoreForestLeaf,
        );
        let subset = vec![true, true, true];
        let est = tree_embedding_estimate(&cpi, 0, &subset);
        assert!((est - 9.0).abs() < 1e-9, "estimate {est}");
    }

    #[test]
    fn greedy_prefers_selective_path_first() {
        // Challenge-1 shape: root 0 with a highly selective branch (few
        // candidates) and an unselective branch (many candidates).
        // Query: 0(A) - 1(B) - 2(C), and 0 - 3(D); no cycles → tree query,
        // with root forced at 0 the core = {0}. Use DecompositionMode::None
        // to exercise path ordering over the whole tree.
        let mut g_labels = vec![0u32, 1, 2, 3];
        let mut g_edges = vec![(0u32, 1u32), (1, 2), (0, 3)];
        // 50 extra D-labeled vertices on 0 → D path has many embeddings.
        for i in 0..50u32 {
            g_labels.push(3);
            g_edges.push((0, 4 + i));
        }
        let (q, cpi, decomp) = setup(
            &[0, 1, 2, 3],
            &[(0, 1), (1, 2), (0, 3)],
            &g_labels,
            &g_edges,
            0,
            DecompositionMode::None,
        );
        let plan = compute_order(&q, &cpi, &decomp);
        let seq = plan.sequence();
        // The selective B-C path should be ordered before the D leaf.
        let pos = |v: u32| seq.iter().position(|&x| x == v).unwrap();
        assert!(pos(1) < pos(3), "seq = {seq:?}");
        assert!(pos(2) < pos(3), "seq = {seq:?}");
    }
}
