//! Pull-based embedding streams.
//!
//! [`find_embeddings`](crate::find_embeddings) pushes results into a sink;
//! an [`EmbeddingStream`] inverts the control flow into a standard
//! `Iterator`, running the search on a worker thread with a bounded
//! channel. Dropping the stream early cancels the search (the worker's
//! next send fails and the enumerator unwinds), so `stream.take(5)` does
//! only slightly more than 5 embeddings' worth of work.

use crate::sync::thread::{self, JoinHandle};

use cfl_graph::Graph;

use crate::config::MatchConfig;
use crate::error::Error;
use crate::result::{Embedding, MatchOutcome};

/// An iterator over the embeddings of a query, produced concurrently.
///
/// Construction validates the inputs eagerly (so errors surface before the
/// first `next()`); the search itself runs on a dedicated worker thread.
pub struct EmbeddingStream {
    rx: Option<crossbeam::channel::Receiver<Embedding>>,
    worker: Option<JoinHandle<MatchOutcome>>,
}

impl EmbeddingStream {
    /// Starts the search. The graphs are owned (or cheaply cloned) so the
    /// stream is `'static` and can outlive the call site.
    pub fn start(q: Graph, g: Graph, config: MatchConfig) -> Result<EmbeddingStream, Error> {
        // Validate eagerly on the calling thread.
        if q.num_vertices() == 0 {
            return Err(Error::EmptyQuery);
        }
        if !cfl_graph::is_connected(&q) {
            return Err(Error::DisconnectedQuery);
        }
        if q.num_vertices() > g.num_vertices() {
            return Err(Error::QueryLargerThanData {
                query_vertices: q.num_vertices(),
                data_vertices: g.num_vertices(),
            });
        }

        let (tx, rx) = crossbeam::channel::bounded::<Embedding>(256);
        let worker = thread::spawn(move || {
            let report = crate::exec::find_embeddings(&q, &g, &config, |mapping| {
                tx.send(Embedding {
                    mapping: mapping.to_vec(),
                })
                .is_ok()
            });
            report.map_or(MatchOutcome::Complete, |r| r.outcome)
        });
        Ok(EmbeddingStream {
            rx: Some(rx),
            worker: Some(worker),
        })
    }

    /// Consumes the rest of the stream and reports why the search stopped.
    /// [`MatchOutcome::LimitReached`] is also returned when the stream was
    /// abandoned early (the worker observed a closed channel).
    pub fn finish(mut self) -> MatchOutcome {
        drop(self.rx.take());
        let Some(worker) = self.worker.take() else {
            unreachable!("finish consumes the stream, so the worker is present");
        };
        worker
            .join()
            .unwrap_or_else(|e| std::panic::resume_unwind(e))
    }
}

impl Iterator for EmbeddingStream {
    type Item = Embedding;

    fn next(&mut self) -> Option<Embedding> {
        self.rx.as_ref()?.recv().ok()
    }
}

impl Drop for EmbeddingStream {
    fn drop(&mut self) {
        drop(self.rx.take());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatchConfig;
    use cfl_graph::graph_from_edges;

    fn graphs() -> (Graph, Graph) {
        let q = graph_from_edges(&[0, 1], &[(0, 1)]).unwrap();
        let g =
            graph_from_edges(&[0, 1, 1, 1, 0], &[(0, 1), (0, 2), (0, 3), (4, 1), (4, 2)]).unwrap();
        (q, g)
    }

    #[test]
    fn stream_yields_all_embeddings() {
        let (q, g) = graphs();
        let expected = crate::exec::count_embeddings(&q, &g, &MatchConfig::exhaustive())
            .unwrap()
            .embeddings;
        let stream = EmbeddingStream::start(q, g, MatchConfig::exhaustive()).unwrap();
        let all: Vec<Embedding> = stream.collect();
        assert_eq!(all.len() as u64, expected);
        for e in &all {
            assert_eq!(e.mapping.len(), 2);
        }
    }

    #[test]
    fn early_drop_cancels_search() {
        let (q, g) = graphs();
        let mut stream = EmbeddingStream::start(q, g, MatchConfig::exhaustive()).unwrap();
        let first = stream.next();
        assert!(first.is_some());
        drop(stream); // must not hang
    }

    #[test]
    fn finish_reports_outcome() {
        let (q, g) = graphs();
        let stream =
            EmbeddingStream::start(q.clone(), g.clone(), MatchConfig::exhaustive()).unwrap();
        let outcome = stream.finish();
        // Abandoned immediately: worker sees the closed channel.
        assert!(matches!(
            outcome,
            MatchOutcome::LimitReached | MatchOutcome::Complete
        ));

        let mut stream = EmbeddingStream::start(q, g, MatchConfig::exhaustive()).unwrap();
        let _all: Vec<_> = stream.by_ref().collect();
        assert_eq!(stream.finish(), MatchOutcome::Complete);
    }

    #[test]
    fn invalid_inputs_fail_eagerly() {
        let empty = graph_from_edges(&[], &[]).unwrap();
        let g = graph_from_edges(&[0], &[]).unwrap();
        assert!(matches!(
            EmbeddingStream::start(empty, g, MatchConfig::default()),
            Err(Error::EmptyQuery)
        ));
    }
}
