//! Incremental CPI maintenance under data-graph deltas.
//!
//! A [`Maintained`] handle keeps a query's preparation (decomposition, CPI,
//! matching order) alive across [`GraphDelta`](cfl_graph::GraphDelta)
//! applications. After a delta, [`Maintained::refresh`] brings the CPI up
//! to date *without* redoing the full CandVerify work of a cold
//! [`prepare`](crate::prepare):
//!
//! * **Unchanged** — no vertex in the delta's dirty frontier carries a
//!   label the query uses. Candidate sets, CPI adjacency and the matching
//!   order are provably identical, so the old preparation is kept as-is.
//! * **Refiltered** — only the dirty frontier was re-verified, and a
//!   *retention proof* (below) established that the old CPI is
//!   bit-identical to a rebuild against the new graph, so it was kept.
//!   This is the delta fast path: cost is `O(|dirty| · |V(q)|)` filter
//!   probes plus a root-selection replay — no arena is reconstructed.
//! * **Rebuilt** — the pipeline reran in full: through the surviving
//!   memoized verdicts when the handle is in sync and damage is bounded
//!   but the retention proof failed, or against a fresh [`VerdictCache`]
//!   when the damage exceeds [`DAMAGE_THRESHOLD`] or the delta's epoch
//!   does not extend the handle's.
//!
//! All three paths yield a CPI bit-identical to a cold rebuild against the
//! new graph. CandVerify is a pure function of a data vertex's statistics
//! (MND, NLF signature) and a query vertex's statistics, and the dirty
//! frontier ([`AppliedDelta::dirty`]) is exactly the set of data vertices
//! whose statistics a delta may change — so replayed verdicts equal
//! recomputed ones, and the construction recursion (which is deterministic
//! given the verdicts) produces the same arenas.
//!
//! ## The retention proof
//!
//! With the NLF filter on, a CandVerify pass implies the degree pre-filter
//! passes too (per-label neighbor counts dominate, and they sum to the
//! degree), so every candidate set is a closed-form function of verdicts
//! and candidate-adjacent edges: `C(u) = {v : label ∧ verify(u, v) ∧
//! adjacency constraints against the other C-sets}`. The old CPI is
//! therefore bit-identical to a rebuild when
//!
//! 1. **no verdict flipped** — for every dirty vertex `v` carrying a query
//!    label and every label-matching query vertex `u`, the verdict under
//!    the previous epoch's statistics equals the verdict under the new
//!    ones (the handle retains the old [`GraphStats`] so *both* sides are
//!    computable for pairs the old build never consulted);
//! 2. **no delta edge bridges candidates** — for every inserted or deleted
//!    edge `(x, y)` and every query edge `(u, w)`, not both `verify(u, x)`
//!    and `verify(w, y)` hold (in either orientation). Candidate
//!    membership implies verify-pass, so no changed edge can enter or
//!    leave a CPI adjacency row, a same-level S-NTE test, or a seeding /
//!    neighborhood-mask scan *between surviving candidates*; and
//! 3. **the root is stable** — root selection replayed over the new
//!    statistics picks the same vertex. (Root scoring reads label+degree
//!    counts, which a delta can shift even when no verdict flips, so this
//!    is checked by replay rather than implied.)
//!
//! The `Unchanged` proof is one step stronger: candidates all carry query
//! labels, so if no dirty vertex does, no candidate's statistics changed
//! *and* no edge incident to a candidate changed (the delta's endpoints
//! are in the frontier), leaving every CPI arena untouched. The
//! differential tests in this module and the `delta_identity` fuzz target
//! check the identity end-to-end via
//! [`Cpi::checksum`](crate::cpi::Cpi::checksum).

use cfl_graph::{AppliedDelta, Graph, VertexId};

use crate::config::MatchConfig;
use crate::error::Error;
use crate::exec::{prepare_with_verdicts, root_eligible, Prepared, SinkRef};
use crate::filters::{cand_verify_stats, FilterContext, GraphStats, VerdictCache};
use crate::result::{Embedding, MatchReport};
use crate::root::select_root_with_candidates;

/// Dirty-frontier fraction above which [`Maintained::refresh`] abandons
/// memoized refiltering for a cold rebuild: past this point most verdict
/// columns are invalid, so replaying the survivors no longer amortizes
/// the cache probes. 25% is conservative — refiltering wins comfortably
/// below it and a rebuild is never *worse* than refiltering above it.
pub const DAMAGE_THRESHOLD: f64 = 0.25;

/// Cumulative refresh accounting for one [`Maintained`] handle, surfaced
/// through [`Maintained::refresh_stats`] and copied into
/// [`TraceReport::cache`](cfl_trace::TraceReport) by the handle's
/// enumeration entry points when the `trace` feature is on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RefreshStats {
    /// Σ dirty-frontier sizes over every refresh this handle has run.
    pub dirty_frontier: u64,
    /// Refreshes resolved as [`RefreshKind::Unchanged`].
    pub unchanged: u64,
    /// Refreshes resolved as [`RefreshKind::Refiltered`].
    pub refiltered: u64,
    /// Refreshes resolved as [`RefreshKind::Rebuilt`].
    pub rebuilt: u64,
}

/// How a [`Maintained::refresh`] brought the preparation up to date.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefreshKind {
    /// The dirty frontier touches no query label: the old preparation is
    /// provably identical to a rebuild and was kept verbatim.
    Unchanged,
    /// Only the dirty frontier was re-verified; the retention proof (see
    /// the module docs) established the old CPI bit-identical to a
    /// rebuild, so it was kept without reconstructing any arena.
    Refiltered,
    /// The pipeline reran in full — through the surviving memoized
    /// CandVerify verdicts when the retention proof failed on an in-sync
    /// handle, or against a fresh cache (damage above
    /// [`DAMAGE_THRESHOLD`], or an epoch gap).
    Rebuilt,
}

/// A query preparation maintained incrementally across data-graph deltas.
///
/// Borrows the query for its lifetime; the data graph is passed to each
/// call because deltas produce *successor* graphs (the handle tracks which
/// version it is synchronized with via [`epoch`](Self::epoch)).
pub struct Maintained<'q> {
    q: &'q Graph,
    config: MatchConfig,
    /// `has_label[l]` ⇔ some query vertex carries label `l` (indexed up to
    /// the query's label universe; larger data labels are never queried).
    q_has_label: Vec<bool>,
    prepared: Prepared,
    verdicts: VerdictCache,
    /// Query-side statistics (the query never changes under this handle).
    q_stats: GraphStats,
    /// Statistics of the data-graph version the handle is synchronized
    /// with. Retained across refreshes so the retention proof can evaluate
    /// the *previous* epoch's CandVerify verdict for any pair — including
    /// pairs the old build never consulted (a shared [`StatTables`]
    /// handle, so this keeps the old tables alive, not a copy).
    ///
    /// [`StatTables`]: cfl_graph::StatTables
    g_stats: GraphStats,
    /// |V(G)| the cache rows were sized for (edge-only deltas preserve it;
    /// a mismatch signals a foreign graph and forces a rebuild).
    num_data_vertices: usize,
    epoch: u64,
    stats: RefreshStats,
}

impl<'q> Maintained<'q> {
    /// Prepares `q` against `g` and attaches an empty verdict cache that
    /// fills as CandVerify runs, priming future [`refresh`](Self::refresh)
    /// calls.
    pub fn prepare(q: &'q Graph, g: &Graph, config: &MatchConfig) -> Result<Self, Error> {
        let verdicts = VerdictCache::new(q.num_vertices(), g.num_vertices());
        let g_stats = GraphStats::build(g);
        let prepared = prepare_with_verdicts(q, g, &g_stats, config, Some(&verdicts))?;
        let mut q_has_label = vec![false; q.num_labels()];
        for u in q.vertices() {
            q_has_label[q.label(u).0 as usize] = true;
        }
        Ok(Maintained {
            q,
            config: config.clone(),
            q_has_label,
            prepared,
            verdicts,
            q_stats: GraphStats::build(q),
            g_stats,
            num_data_vertices: g.num_vertices(),
            epoch: g.epoch(),
            stats: RefreshStats::default(),
        })
    }

    /// The query this handle maintains.
    pub fn query(&self) -> &'q Graph {
        self.q
    }

    /// The data-graph epoch the preparation is synchronized with.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current preparation (CPI, matching order, phase stats).
    pub fn prepared(&self) -> &Prepared {
        &self.prepared
    }

    /// Cumulative refresh accounting since [`prepare`](Self::prepare).
    pub fn refresh_stats(&self) -> RefreshStats {
        self.stats
    }

    /// Whether `v` (in the data graph) carries a label the query uses.
    #[inline]
    fn carries_query_label(&self, g: &Graph, v: VertexId) -> bool {
        let l = g.label(v).0 as usize;
        l < self.q_has_label.len() && self.q_has_label[l]
    }

    /// Synchronizes the preparation with `applied` (the result of
    /// [`Graph::apply_delta`]) and reports which path ran. The refreshed
    /// CPI is bit-identical to a cold rebuild against `applied.graph`.
    ///
    /// The handle must currently be synchronized with the graph the delta
    /// was applied to; if deltas were skipped (`applied.graph.epoch() !=
    /// self.epoch() + 1`) the dirty frontier no longer bounds the damage,
    /// and the refresh conservatively rebuilds from scratch.
    pub fn refresh(&mut self, applied: &AppliedDelta) -> Result<RefreshKind, Error> {
        let kind = self.refresh_inner(applied)?;
        self.stats.dirty_frontier += applied.dirty.len() as u64;
        match kind {
            RefreshKind::Unchanged => self.stats.unchanged += 1,
            RefreshKind::Refiltered => self.stats.refiltered += 1,
            RefreshKind::Rebuilt => self.stats.rebuilt += 1,
        }
        Ok(kind)
    }

    fn refresh_inner(&mut self, applied: &AppliedDelta) -> Result<RefreshKind, Error> {
        let g = &applied.graph;
        if g.epoch() != self.epoch + 1 || g.num_vertices() != self.num_data_vertices {
            // Desynchronized handle: the frontier no longer bounds the
            // damage, so nothing memoized can be trusted.
            self.verdicts = VerdictCache::new(self.q.num_vertices(), g.num_vertices());
            self.num_data_vertices = g.num_vertices();
            return self.rebuild(g, RefreshKind::Rebuilt);
        }
        if self.config.filters.use_label_pair {
            // Label-pair blooms summarize a 2-hop neighborhood, so a
            // delta's statistics damage reaches beyond the dirty frontier —
            // and beyond the verdict columns the frontier bounds. Neither
            // the Unchanged proof nor the retention proof applies, and the
            // memoized verdicts cannot be trusted: start cold.
            self.verdicts = VerdictCache::new(self.q.num_vertices(), g.num_vertices());
            return self.rebuild(g, RefreshKind::Rebuilt);
        }
        if !applied
            .dirty
            .iter()
            .any(|&v| self.carries_query_label(g, v))
        {
            // The CPI is already correct, but the frontier's memoized
            // verdicts are stale relative to the new statistics: drop them
            // so the *next* refresh replays only valid entries. Stats of
            // query-labeled vertices are untouched (their neighbors would
            // be in the frontier), yet the handle still tracks the synced
            // epoch's tables for future retention proofs.
            self.verdicts.invalidate(&applied.dirty);
            self.g_stats = GraphStats::build(g);
            self.epoch = g.epoch();
            return Ok(RefreshKind::Unchanged);
        }
        if applied.dirty.len() as f64 > DAMAGE_THRESHOLD * g.num_vertices() as f64 {
            // Most verdict columns are invalid: replaying the survivors no
            // longer amortizes the cache probes, start cold.
            self.verdicts = VerdictCache::new(self.q.num_vertices(), g.num_vertices());
            return self.rebuild(g, RefreshKind::Rebuilt);
        }

        // Bounded damage: re-verify exactly the dirty frontier and try to
        // prove the old CPI still exact.
        self.verdicts.invalidate(&applied.dirty);
        let g_stats = GraphStats::build(g);
        if self.cpi_provably_unchanged(applied, &g_stats) {
            self.g_stats = g_stats;
            self.epoch = g.epoch();
            return Ok(RefreshKind::Refiltered);
        }
        // The delta reaches into the CPI's structure: rerun the pipeline
        // through the surviving memoized verdicts (the frontier's columns
        // are already invalidated and partially re-recorded above).
        self.prepared =
            prepare_with_verdicts(self.q, g, &g_stats, &self.config, Some(&self.verdicts))?;
        self.g_stats = g_stats;
        self.epoch = g.epoch();
        Ok(RefreshKind::Rebuilt)
    }

    /// Full pipeline rerun against `g` (the caller has reset or
    /// invalidated the verdict cache as appropriate), returning `kind`.
    fn rebuild(&mut self, g: &Graph, kind: RefreshKind) -> Result<RefreshKind, Error> {
        let g_stats = GraphStats::build(g);
        self.prepared =
            prepare_with_verdicts(self.q, g, &g_stats, &self.config, Some(&self.verdicts))?;
        self.g_stats = g_stats;
        self.epoch = g.epoch();
        Ok(kind)
    }

    /// The retention proof behind [`RefreshKind::Refiltered`] (see the
    /// module docs): recomputes the dirty frontier's verdicts (recording
    /// them into the invalidated cache columns), then checks that no
    /// verdict flipped across the delta, that no delta edge connects
    /// verify-passing endpoints across any query edge, and that root
    /// selection replayed over the new statistics is stable. All three
    /// together prove the retained CPI bit-identical to a cold rebuild
    /// against `applied.graph`.
    ///
    /// Soundness leans on CandVerify subsuming the degree pre-filter,
    /// which holds only with the NLF filter enabled — ablation configs
    /// without it always rebuild.
    fn cpi_provably_unchanged(&self, applied: &AppliedDelta, new_stats: &GraphStats) -> bool {
        if !self.config.filters.use_nlf {
            return false;
        }
        let g = &applied.graph;
        let old_stats = &self.g_stats;
        let ctx =
            FilterContext::with_options(self.q, g, &self.q_stats, new_stats, self.config.filters)
                .with_verdicts(&self.verdicts);

        // (1) No verdict may flip. The old side comes from the retained
        // previous-epoch tables, so pairs the old build never consulted
        // are evaluated too, not guessed at.
        for &v in &applied.dirty {
            if !self.carries_query_label(g, v) {
                continue;
            }
            for u in self.q.vertices() {
                if self.q.label(u) != g.label(v) {
                    continue;
                }
                let old =
                    cand_verify_stats(&self.q_stats, old_stats, self.config.filters, v, u).passed;
                if ctx.cand_verify(v, u) != old {
                    return false;
                }
            }
        }

        // (2) No delta edge may bridge verify-passing endpoints across a
        // query edge, in either orientation. With (1) established the old
        // and new verdicts agree, so probing the new side covers both
        // builds; the endpoints are touched (⊆ dirty), so these probes
        // replay the verdicts just recorded.
        let delta = &applied.delta;
        for &(x, y) in delta.inserts().iter().chain(delta.deletes().iter()) {
            for (a, b) in [(x, y), (y, x)] {
                for u in self.q.vertices() {
                    if self.q.label(u) != g.label(a) || !ctx.cand_verify(a, u) {
                        continue;
                    }
                    for &w in self.q.neighbors(u) {
                        if self.q.label(w) == g.label(b) && ctx.cand_verify(b, w) {
                            return false;
                        }
                    }
                }
            }
        }

        // (3) Root selection must be stable: its score reads label+degree
        // counts, which the delta can shift without flipping any verdict.
        // The replay runs over memoized verdicts, so it costs one pass
        // over the winner's light candidates, not a re-verification.
        let eligible = root_eligible(self.q, self.config.decomposition);
        let (root, _) = select_root_with_candidates(&ctx, &eligible);
        root == self.prepared.cpi.root()
    }

    /// Enumerates embeddings against `g`, which must be the graph version
    /// this handle is synchronized with (same [`epoch`](Self::epoch)).
    pub fn find_embeddings(
        &self,
        g: &Graph,
        mut sink: impl FnMut(&[VertexId]) -> bool,
    ) -> MatchReport {
        self.run(g, Some(&mut sink))
    }

    /// Counts embeddings against `g` (same epoch requirement as
    /// [`find_embeddings`](Self::find_embeddings)).
    pub fn count_embeddings(&self, g: &Graph) -> MatchReport {
        self.run(g, None)
    }

    /// Collects up to the budget's embeddings against `g`.
    pub fn collect_embeddings(&self, g: &Graph) -> (Vec<Embedding>, MatchReport) {
        let mut out = Vec::new();
        let report = self.find_embeddings(g, |m| {
            out.push(Embedding {
                mapping: m.to_vec(),
            });
            true
        });
        (out, report)
    }

    fn run(&self, g: &Graph, sink: SinkRef<'_>) -> MatchReport {
        debug_assert_eq!(
            g.epoch(),
            self.epoch,
            "Maintained::run against a graph version the handle is not \
             synchronized with (call refresh first)"
        );
        #[allow(unused_mut)]
        let mut report =
            crate::exec::enumerate_prepared(self.q, g, &self.prepared, &self.config, sink);
        #[cfg(feature = "trace")]
        if let Some(trace) = report.stats.trace.as_deref_mut() {
            trace.cache.dirty_frontier = self.stats.dirty_frontier;
            trace.cache.refresh_unchanged = self.stats.unchanged;
            trace.cache.refresh_refiltered = self.stats.refiltered;
            trace.cache.refresh_rebuilt = self.stats.rebuilt;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatchConfig;
    use cfl_graph::{graph_from_edges, GraphDelta};

    /// The 8-vertex base motif: two label-{0,1,2} triangles bridged by
    /// label-3 vertices.
    const MOTIF_LABELS: [u32; 8] = [0, 1, 2, 0, 1, 2, 3, 3];
    const MOTIF_EDGES: [(u32, u32); 10] = [
        (0, 1),
        (1, 2),
        (2, 0),
        (3, 4),
        (4, 5),
        (5, 3),
        (0, 6),
        (6, 3),
        (2, 7),
        (7, 5),
    ];

    /// `copies` disjoint copies of the motif — large enough that one
    /// edge's dirty frontier stays under the damage threshold.
    fn motif_copies(copies: u32) -> Graph {
        let mut labels = Vec::new();
        let mut edges = Vec::new();
        for c in 0..copies {
            let base = c * 8;
            labels.extend_from_slice(&MOTIF_LABELS);
            edges.extend(MOTIF_EDGES.iter().map(|&(u, v)| (base + u, base + v)));
        }
        graph_from_edges(&labels, &edges).unwrap()
    }

    fn data_graph() -> Graph {
        motif_copies(4)
    }

    fn triangle_query() -> Graph {
        graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    fn fresh_checksum(q: &Graph, g: &Graph, config: &MatchConfig) -> u64 {
        crate::exec::prepare(q, g, config).unwrap().cpi.checksum()
    }

    #[track_caller]
    fn assert_in_sync(m: &Maintained<'_>, g: &Graph, config: &MatchConfig) {
        assert_eq!(m.epoch(), g.epoch());
        assert_eq!(
            m.prepared().cpi.checksum(),
            fresh_checksum(m.query(), g, config),
            "maintained CPI diverged from a cold rebuild"
        );
        let (mut a, _) = m.collect_embeddings(g);
        let (mut b, _) = crate::exec::collect_embeddings(m.query(), g, config).unwrap();
        a.sort_by(|x, y| x.mapping.cmp(&y.mapping));
        b.sort_by(|x, y| x.mapping.cmp(&y.mapping));
        assert_eq!(
            a.iter().map(|e| &e.mapping).collect::<Vec<_>>(),
            b.iter().map(|e| &e.mapping).collect::<Vec<_>>()
        );
    }

    #[test]
    fn memoized_prepare_matches_cold_prepare() {
        let g = data_graph();
        let q = triangle_query();
        let config = MatchConfig::exhaustive();
        let m = Maintained::prepare(&q, &g, &config).unwrap();
        assert_in_sync(&m, &g, &config);
    }

    #[test]
    fn bridging_insert_rebuilds_through_memoized_cache() {
        let g0 = data_graph();
        let q = triangle_query();
        let config = MatchConfig::exhaustive();
        let mut m = Maintained::prepare(&q, &g0, &config).unwrap();

        // Insert an edge between the two triangles: both endpoints are
        // verify-passing candidates across a query edge, so the CPI's
        // adjacency genuinely changes — the retention proof must refuse
        // and the pipeline rerun (through memoized verdicts).
        let mut d = GraphDelta::new();
        d.insert(1, 3);
        let applied = g0.apply_delta(&d).unwrap();
        assert_eq!(m.refresh(&applied).unwrap(), RefreshKind::Rebuilt);
        assert_in_sync(&m, &applied.graph, &config);

        // And delete it again — back to the original edge set.
        let mut d = GraphDelta::new();
        d.delete(1, 3);
        let applied2 = applied.graph.apply_delta(&d).unwrap();
        assert_eq!(m.refresh(&applied2).unwrap(), RefreshKind::Rebuilt);
        assert_in_sync(&m, &applied2.graph, &config);
        assert_eq!(
            m.prepared().cpi.checksum(),
            fresh_checksum(&q, &g0, &config)
        );
    }

    #[test]
    fn retention_proof_keeps_cpi_without_rebuilding() {
        let g0 = data_graph();
        let q = triangle_query();
        let config = MatchConfig::exhaustive();
        let mut m = Maintained::prepare(&q, &g0, &config).unwrap();
        let before = std::sync::Arc::clone(&m.prepared().cpi);

        // Insert an edge between the two label-3 bridge vertices of the
        // first motif. Their frontier reaches query-labeled vertices (so
        // the Unchanged proof does not apply), but no verdict can flip —
        // the query-labeled frontier vertices keep their neighbor sets,
        // and MND only grows — and the delta edge's endpoints carry a
        // non-query label, so it cannot bridge candidates. The retention
        // proof must keep the CPI: same arenas, not merely equal ones.
        let mut d = GraphDelta::new();
        d.insert(6, 7);
        let applied = g0.apply_delta(&d).unwrap();
        assert!(applied.dirty.iter().any(|&v| applied.graph.label(v).0 != 3));
        assert_eq!(m.refresh(&applied).unwrap(), RefreshKind::Refiltered);
        assert!(std::sync::Arc::ptr_eq(&before, &m.prepared().cpi));
        assert_in_sync(&m, &applied.graph, &config);

        // Deleting it again retains as well and round-trips exactly.
        let mut d = GraphDelta::new();
        d.delete(6, 7);
        let applied2 = applied.graph.apply_delta(&d).unwrap();
        assert_eq!(m.refresh(&applied2).unwrap(), RefreshKind::Refiltered);
        assert!(std::sync::Arc::ptr_eq(&before, &m.prepared().cpi));
        assert_in_sync(&m, &applied2.graph, &config);
        assert_eq!(
            m.prepared().cpi.checksum(),
            fresh_checksum(&q, &g0, &config)
        );
    }

    #[test]
    fn unchanged_refresh_skips_rebuild_and_stays_correct() {
        // data_graph() plus an isolated label-3 path 32-33-34.
        let mut labels = data_graph()
            .labels()
            .iter()
            .map(|l| l.0)
            .collect::<Vec<_>>();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for c in 0..4u32 {
            let base = c * 8;
            edges.extend(MOTIF_EDGES.iter().map(|&(u, v)| (base + u, base + v)));
        }
        labels.extend_from_slice(&[3, 3, 3]);
        edges.extend_from_slice(&[(32, 33), (33, 34)]);
        let g0 = graph_from_edges(&labels, &edges).unwrap();
        let q = triangle_query();
        let config = MatchConfig::exhaustive();
        let mut m = Maintained::prepare(&q, &g0, &config).unwrap();
        let before = m.prepared().cpi.checksum();

        // The pocket 32-33-34 is all label 3 (unused by the query) and
        // isolated from the motifs, so the dirty frontier of an insert
        // inside it — endpoints plus their neighbors — never reaches a
        // query-labeled vertex.
        let mut d = GraphDelta::new();
        d.insert(32, 34);
        let applied = g0.apply_delta(&d).unwrap();
        assert!(applied.dirty.iter().all(|&v| applied.graph.label(v).0 == 3));
        assert_eq!(m.refresh(&applied).unwrap(), RefreshKind::Unchanged);
        assert_eq!(m.prepared().cpi.checksum(), before);
        assert_in_sync(&m, &applied.graph, &config);
    }

    #[test]
    fn large_damage_falls_back_to_rebuild() {
        let g0 = data_graph();
        let q = triangle_query();
        let config = MatchConfig::exhaustive();
        let mut m = Maintained::prepare(&q, &g0, &config).unwrap();

        // One insert per motif copy dirties most of the graph: the
        // frontier fraction clears the 25% threshold.
        let mut d = GraphDelta::new();
        d.insert(1, 3).insert(9, 11).insert(17, 19).insert(25, 27);
        let applied = g0.apply_delta(&d).unwrap();
        assert!(applied.dirty.len() as f64 > DAMAGE_THRESHOLD * g0.num_vertices() as f64);
        assert_eq!(m.refresh(&applied).unwrap(), RefreshKind::Rebuilt);
        assert_in_sync(&m, &applied.graph, &config);
    }

    #[test]
    fn epoch_gap_forces_rebuild() {
        let g0 = data_graph();
        let q = triangle_query();
        let config = MatchConfig::exhaustive();
        let mut m = Maintained::prepare(&q, &g0, &config).unwrap();

        // Apply two deltas but only refresh with the second: the handle
        // never saw the first frontier, so it must not trust the second.
        let mut d1 = GraphDelta::new();
        d1.insert(1, 3);
        let a1 = g0.apply_delta(&d1).unwrap();
        let mut d2 = GraphDelta::new();
        d2.insert(6, 7);
        let a2 = a1.graph.apply_delta(&d2).unwrap();
        assert_eq!(m.refresh(&a2).unwrap(), RefreshKind::Rebuilt);
        assert_in_sync(&m, &a2.graph, &config);
    }

    #[test]
    fn successive_refreshes_replay_only_valid_verdicts() {
        // A longer random-ish walk of deltas, checking the identity after
        // every step — exercises verdict invalidation across generations
        // (a stale "passed" bit surviving would flip a checksum here).
        let q = triangle_query();
        let config = MatchConfig::exhaustive();
        let mut g = data_graph();
        let mut m = Maintained::prepare(&q, &g, &config).unwrap();
        let steps: &[(bool, u32, u32)] = &[
            (true, 1, 3),
            (true, 0, 4),
            (false, 0, 1),
            (true, 0, 1),
            (false, 1, 3),
            (true, 1, 7),
            (false, 2, 7),
        ];
        for &(ins, u, v) in steps {
            let mut d = GraphDelta::new();
            if ins {
                d.insert(u, v);
            } else {
                d.delete(u, v);
            }
            let applied = g.apply_delta(&d).unwrap();
            m.refresh(&applied).unwrap();
            assert_in_sync(&m, &applied.graph, &config);
            g = applied.graph;
        }
    }

    #[test]
    fn refresh_works_across_configs() {
        let g0 = data_graph();
        let q = triangle_query();
        for config in [
            MatchConfig::exhaustive(),
            MatchConfig::variant_cf_match().with_budget(crate::config::Budget::UNLIMITED),
            MatchConfig::variant_topdown_cpi().with_budget(crate::config::Budget::UNLIMITED),
        ] {
            let mut m = Maintained::prepare(&q, &g0, &config).unwrap();
            let mut d = GraphDelta::new();
            d.insert(1, 3);
            let applied = g0.apply_delta(&d).unwrap();
            m.refresh(&applied).unwrap();
            assert_in_sync(&m, &applied.graph, &config);
        }
    }

    #[test]
    fn label_pair_filter_always_rebuilds() {
        // With the 2-hop label-pair blooms on, the dirty frontier no
        // longer bounds the statistics damage, so even the delta that the
        // retention proof would keep (see
        // `retention_proof_keeps_cpi_without_rebuilding`) must rebuild —
        // and still land bit-identical to a cold prepare.
        let g0 = data_graph();
        let q = triangle_query();
        let config = MatchConfig::exhaustive().with_filters(crate::filters::FilterOptions {
            use_label_pair: true,
            ..Default::default()
        });
        let mut m = Maintained::prepare(&q, &g0, &config).unwrap();
        let mut d = GraphDelta::new();
        d.insert(6, 7);
        let applied = g0.apply_delta(&d).unwrap();
        assert_eq!(m.refresh(&applied).unwrap(), RefreshKind::Rebuilt);
        assert_in_sync(&m, &applied.graph, &config);
    }

    #[test]
    fn empty_candidate_queries_survive_refresh() {
        // Query label 9 is absent from the data graph: preparation proves
        // emptiness, and refreshes must keep working.
        let g0 = data_graph();
        let q = graph_from_edges(&[9, 9], &[(0, 1)]).unwrap();
        let config = MatchConfig::exhaustive();
        let mut m = Maintained::prepare(&q, &g0, &config).unwrap();
        assert!(m.prepared().provably_empty());
        let mut d = GraphDelta::new();
        d.insert(1, 3);
        let applied = g0.apply_delta(&d).unwrap();
        m.refresh(&applied).unwrap();
        assert!(m.prepared().provably_empty());
        assert_eq!(m.count_embeddings(&applied.graph).embeddings, 0);
    }
}
