//! Bridge to the `cfl-verify` invariant checkers (`validate` feature).
//!
//! Compiled only when the `validate` cargo feature is enabled, so default
//! builds pay zero overhead — no checker call sites even exist. With the
//! feature on, [`prepare`](crate::prepare) re-derives every invariant of
//! the structures it just built — the graph representation, the CFL
//! decomposition (§3), the CPI (§4.1, Algorithms 3–4) and the matching
//! order (§4.2.1, Algorithm 2) — and panics with vertex-level diagnostics
//! if any is violated.

use cfl_graph::{BfsTree, Graph, VertexId};
use cfl_verify::{
    check_cpi, check_decomposition, check_graph, check_order, CpiCheckOptions, CpiView, DecompSpec,
    OrderSpec, OrderStep, PartClass, Report, TreeSpec,
};

use crate::config::{CpiMode, DecompositionMode, MatchConfig};
use crate::cpi::Cpi;
use crate::decompose::{CflDecomposition, Role};
use crate::exec::Prepared;
use crate::order::OrderPlan;

impl CpiView for Cpi {
    fn tree(&self) -> &BfsTree {
        &self.tree
    }
    fn candidates(&self, u: VertexId) -> &[VertexId] {
        Cpi::candidates(self, u)
    }
    fn row(&self, u: VertexId, parent_pos: usize) -> &[u32] {
        Cpi::row(self, u, parent_pos)
    }
    fn arena_totals(&self) -> Option<(u64, u64)> {
        Some(Cpi::arena_totals(self))
    }
}

fn part_class(role: Role) -> PartClass {
    match role {
        Role::Core => PartClass::Core,
        Role::Forest => PartClass::Forest,
        Role::Leaf => PartClass::Leaf,
    }
}

/// Mirrors the engine's decomposition into the checker's specification.
pub fn decomp_spec(
    decomp: &CflDecomposition,
    root: VertexId,
    mode: DecompositionMode,
) -> DecompSpec {
    DecompSpec {
        roles: decomp.roles.iter().map(|&r| part_class(r)).collect(),
        trees: decomp
            .trees
            .iter()
            .map(|t| TreeSpec {
                connection: t.connection,
                members: t.members.clone(),
            })
            .collect(),
        root,
        whole_core: mode == DecompositionMode::None,
        leaves_extracted: mode == DecompositionMode::CoreForestLeaf,
    }
}

/// Mirrors the engine's matching plan into the checker's specification.
pub fn order_spec(plan: &OrderPlan) -> OrderSpec {
    OrderSpec {
        steps: plan
            .vertices
            .iter()
            .map(|ov| OrderStep {
                vertex: ov.vertex,
                parent: ov.parent,
                checks: ov.checks.clone(),
            })
            .collect(),
        core_len: plan.core_len,
        leaves: plan.leaves.clone(),
    }
}

/// CPI checker options matching the construction mode and filter knobs the
/// index was built under. The naive construction applies only the label
/// filter and skips pruning entirely, so everything else is off for it.
pub fn cpi_check_options(config: &MatchConfig) -> CpiCheckOptions {
    let pruned = config.cpi != CpiMode::Naive;
    CpiCheckOptions {
        use_degree: pruned,
        use_nlf: pruned && config.filters.use_nlf,
        use_mnd: pruned && config.filters.use_mnd,
        expect_reachable: pruned,
        expect_refined: config.cpi == CpiMode::TopDownRefined,
    }
}

/// Re-derives and checks every invariant of a prepared query, returning the
/// accumulated report (clean when everything holds).
pub fn verify_prepared(q: &Graph, g: &Graph, prepared: &Prepared, config: &MatchConfig) -> Report {
    let mut report = Report::new();
    check_graph(q, &mut report);
    check_graph(g, &mut report);
    check_cpi(
        q,
        g,
        prepared.cpi.as_ref(),
        &cpi_check_options(config),
        &mut report,
    );
    check_decomposition(
        q,
        &decomp_spec(
            &prepared.decomposition,
            prepared.cpi.root(),
            config.decomposition,
        ),
        &mut report,
    );
    // The order plan is intentionally empty when emptiness was proven
    // during CPI construction; there is nothing to check then.
    if !prepared.provably_empty() {
        let roles: Vec<PartClass> = prepared
            .decomposition
            .roles
            .iter()
            .map(|&r| part_class(r))
            .collect();
        check_order(q, &roles, &order_spec(&prepared.plan), &mut report);
    }
    report
}

/// Panics with vertex-level diagnostics when any invariant is violated.
pub fn assert_valid(q: &Graph, g: &Graph, prepared: &Prepared, config: &MatchConfig) {
    let report = verify_prepared(q, g, prepared, config);
    assert!(
        report.is_clean(),
        "validate: invariant violations in prepared query:\n{report}"
    );
}
