//! Results and instrumentation of a matching run.

use std::time::Duration;

use cfl_graph::VertexId;

/// One subgraph-isomorphic embedding: `mapping[u]` is the data vertex that
/// query vertex `u` maps to (Definition 2.1).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Embedding {
    /// Indexed by query vertex id.
    pub mapping: Vec<VertexId>,
}

impl Embedding {
    /// The data vertex mapped by query vertex `u`.
    #[inline]
    #[must_use]
    pub fn map(&self, u: VertexId) -> VertexId {
        self.mapping[u as usize]
    }
}

/// Why a matching run stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use = "an outcome distinguishes exhaustive from truncated counts"]
pub enum MatchOutcome {
    /// Every embedding was enumerated.
    Complete,
    /// The `max_embeddings` budget was reached.
    LimitReached,
    /// The wall-clock budget was exceeded (the paper's "INF" points).
    TimedOut,
    /// The run's [`CancelToken`](crate::CancelToken) was cancelled; the
    /// search stopped within one backtrack quantum of the latch.
    Cancelled,
}

impl MatchOutcome {
    /// Whether the reported count is exhaustive.
    #[must_use]
    pub fn is_complete(self) -> bool {
        matches!(self, MatchOutcome::Complete)
    }

    /// Stable lowercase tag for wire formats and JSON reports
    /// (`"complete"`, `"limit"`, `"deadline"`, `"cancelled"`).
    #[must_use]
    pub fn as_tag(self) -> &'static str {
        match self {
            MatchOutcome::Complete => "complete",
            MatchOutcome::LimitReached => "limit",
            MatchOutcome::TimedOut => "deadline",
            MatchOutcome::Cancelled => "cancelled",
        }
    }
}

/// Incremental FNV-1a digest over a stream of embeddings.
///
/// The digest is a function of the embedding *sequence* — values and
/// order — so two runs agree iff they emitted the same embeddings in the
/// same order. The serving engine uses it to prove that a query answered
/// over a shared [`DataGraph`](crate::DataGraph) by an executor worker is
/// byte-identical to a serial one-shot run (`cfl match --checksum` prints
/// the same digest). Each mapping is folded as its length (u32 LE)
/// followed by its vertex ids (u32 LE), so embedding boundaries are
/// unambiguous.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EmbeddingChecksum {
    hash: u64,
    count: u64,
}

impl Default for EmbeddingChecksum {
    fn default() -> Self {
        EmbeddingChecksum {
            hash: 0xcbf2_9ce4_8422_2325, // FNV-1a 64-bit offset basis
            count: 0,
        }
    }
}

impl EmbeddingChecksum {
    /// Fresh digest (FNV-1a offset basis, zero embeddings).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn fold(&mut self, word: u32) {
        for b in word.to_le_bytes() {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Folds one embedding into the digest.
    #[inline]
    pub fn update(&mut self, mapping: &[VertexId]) {
        self.fold(mapping.len() as u32);
        for &v in mapping {
            self.fold(v);
        }
        self.count += 1;
    }

    /// The digest so far.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.hash
    }

    /// Embeddings folded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Counters and phase timings for one matching run.
///
/// The evaluation splits total time into *query vertex ordering time* (CPI
/// construction + Algorithm 2) and *embedding enumeration time* (Figures 9
/// and 10); these fields support that split.
#[derive(Clone, Debug, Default)]
pub struct MatchStats {
    /// Time spent building the auxiliary structure (CPI).
    pub build_time: Duration,
    /// Time spent computing the matching order.
    pub ordering_time: Duration,
    /// Time spent enumerating embeddings.
    pub enumeration_time: Duration,
    /// Total candidate entries over all query vertices (CPI size proxy,
    /// Figure 16(d)).
    pub cpi_candidates: u64,
    /// Total adjacency-list entries in the CPI (the edge part of its size).
    pub cpi_edges: u64,
    /// Estimated CPI memory in bytes (Figure 16(d) y-axis).
    pub cpi_bytes: u64,
    /// Number of partial-mapping extensions attempted (search tree nodes).
    pub search_nodes: u64,
    /// Number of non-tree edge checks probed against `G`.
    pub nt_checks: u64,
    /// Detailed observability report (phase timers, per-filter pruning
    /// counters, per-worker enumeration statistics). Filled only when the
    /// `trace` cargo feature is enabled; always `None` otherwise, so the
    /// field costs one pointer-sized slot and no work in default builds.
    pub trace: Option<Box<cfl_trace::TraceReport>>,
}

impl MatchStats {
    /// Ordering + build time: what Figure 10 calls "query vertex ordering
    /// time" ("the time to compute the matching order and other auxiliary
    /// data structures that are required for computing the matching order").
    #[must_use]
    pub fn total_ordering_time(&self) -> Duration {
        self.build_time + self.ordering_time
    }
}

/// Summary of one matching run.
#[derive(Clone, Debug)]
#[must_use = "a report carries the outcome; dropping it loses completeness information"]
pub struct MatchReport {
    /// Why the run stopped.
    pub outcome: MatchOutcome,
    /// Number of embeddings emitted (≤ budget).
    pub embeddings: u64,
    /// Instrumentation.
    pub stats: MatchStats,
}

impl MatchReport {
    /// A report for a run that proved emptiness before enumeration (e.g. an
    /// empty candidate set).
    pub fn empty(stats: MatchStats) -> Self {
        MatchReport {
            outcome: MatchOutcome::Complete,
            embeddings: 0,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedding_accessor() {
        let e = Embedding {
            mapping: vec![5, 3, 9],
        };
        assert_eq!(e.map(0), 5);
        assert_eq!(e.map(2), 9);
    }

    #[test]
    fn outcome_flags() {
        assert!(MatchOutcome::Complete.is_complete());
        assert!(!MatchOutcome::LimitReached.is_complete());
        assert!(!MatchOutcome::TimedOut.is_complete());
        assert!(!MatchOutcome::Cancelled.is_complete());
    }

    #[test]
    fn empty_report_is_complete_with_zero_embeddings() {
        let stats = MatchStats {
            cpi_candidates: 7,
            ..Default::default()
        };
        let r = MatchReport::empty(stats);
        assert!(r.outcome.is_complete());
        assert_eq!(r.embeddings, 0);
        assert_eq!(r.stats.cpi_candidates, 7, "stats are preserved");
    }

    #[test]
    fn outcome_tags_are_stable() {
        assert_eq!(MatchOutcome::Complete.as_tag(), "complete");
        assert_eq!(MatchOutcome::LimitReached.as_tag(), "limit");
        assert_eq!(MatchOutcome::TimedOut.as_tag(), "deadline");
        assert_eq!(MatchOutcome::Cancelled.as_tag(), "cancelled");
    }

    #[test]
    fn checksum_is_order_and_boundary_sensitive() {
        let digest = |embs: &[&[u32]]| {
            let mut c = EmbeddingChecksum::new();
            for e in embs {
                c.update(e);
            }
            (c.digest(), c.count())
        };
        let (a, na) = digest(&[&[1, 2], &[3, 4]]);
        let (b, nb) = digest(&[&[3, 4], &[1, 2]]);
        assert_ne!(a, b, "order must matter");
        assert_eq!((na, nb), (2, 2));
        let (c, _) = digest(&[&[1, 2, 3], &[4]]);
        let (d, _) = digest(&[&[1], &[2, 3, 4]]);
        assert_ne!(c, d, "boundaries must matter");
        assert_eq!(digest(&[&[1, 2], &[3, 4]]), (a, 2), "deterministic");
        assert_ne!(
            EmbeddingChecksum::new().digest(),
            a,
            "empty digest is distinct"
        );
    }

    #[test]
    fn trace_defaults_to_none() {
        assert!(MatchStats::default().trace.is_none());
    }

    #[test]
    fn ordering_time_sums_build_and_order() {
        let stats = MatchStats {
            build_time: Duration::from_millis(3),
            ordering_time: Duration::from_millis(4),
            ..Default::default()
        };
        assert_eq!(stats.total_ordering_time(), Duration::from_millis(7));
    }
}
