//! Multi-query sessions: index a data graph once, run many queries.
//!
//! The engine's one-shot entry points ([`find_embeddings`](crate::find_embeddings),
//! [`count_embeddings`](crate::count_embeddings)) rebuild the data-graph
//! side statistics (label index, NLF signatures, maximum neighbor degrees)
//! on every call — `O(|V(G)| + |E(G)|)` work that is query-independent. A
//! [`DataGraph`] hoists that cost so query workloads pay only per-query
//! costs (CPI construction, ordering, enumeration), matching how the
//! paper's evaluation treats dataset preprocessing.

use std::time::Instant;

use cfl_graph::{is_connected, Graph, VertexId};

use crate::config::{DecompositionMode, MatchConfig};
use crate::cpi::Cpi;
use crate::decompose::CflDecomposition;
use crate::error::Error;
use crate::exec::Prepared;
use crate::filters::{FilterContext, GraphStats};
use crate::order::{compute_order_with, OrderPlan};
use crate::result::{Embedding, MatchReport, MatchStats};
use crate::root::select_root_with_candidates;

/// A data graph with its matching statistics prebuilt.
pub struct DataGraph<'g> {
    graph: &'g Graph,
    stats: GraphStats,
}

impl<'g> DataGraph<'g> {
    /// Indexes `g` (label index, NLF signatures, MND) in
    /// `O(|V(G)| + |E(G)|)`.
    pub fn new(g: &'g Graph) -> Self {
        DataGraph {
            graph: g,
            stats: GraphStats::build(g),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The prebuilt statistics (shared with the filter machinery).
    pub fn stats(&self) -> &GraphStats {
        &self.stats
    }

    /// Runs the preparation phase (validation, root selection,
    /// decomposition, CPI, ordering) for one query against this session.
    pub fn prepare(&self, q: &Graph, config: &MatchConfig) -> Result<Prepared, Error> {
        if q.num_vertices() == 0 {
            return Err(Error::EmptyQuery);
        }
        if !is_connected(q) {
            return Err(Error::DisconnectedQuery);
        }
        if q.num_vertices() > self.graph.num_vertices() {
            return Err(Error::QueryLargerThanData {
                query_vertices: q.num_vertices(),
                data_vertices: self.graph.num_vertices(),
            });
        }

        let build_start = Instant::now();
        let q_stats = GraphStats::build(q);
        let ctx = FilterContext::with_options(q, self.graph, &q_stats, &self.stats, config.filters);

        let core_bitmap = cfl_graph::two_core(q);
        let eligible: Vec<VertexId> =
            if core_bitmap.iter().any(|&b| b) && config.decomposition != DecompositionMode::None {
                (0..q.num_vertices() as VertexId)
                    .filter(|&v| core_bitmap[v as usize])
                    .collect()
            } else {
                (0..q.num_vertices() as VertexId).collect()
            };
        let (root, root_cands) = select_root_with_candidates(&ctx, &eligible);

        let decomposition = CflDecomposition::compute(q, root, config.decomposition);
        let cpi = Cpi::build_seeded(&ctx, root, root_cands, config.cpi, config.build_threads);
        let build_time = build_start.elapsed();

        let mut stats = MatchStats {
            build_time,
            cpi_candidates: cpi.total_candidates(),
            cpi_edges: cpi.total_edges(),
            cpi_bytes: cpi.memory_bytes(),
            ..Default::default()
        };

        if cpi.has_empty_candidate_set() {
            return Ok(Prepared {
                decomposition,
                cpi,
                plan: OrderPlan {
                    vertices: Vec::new(),
                    core_len: 0,
                    leaves: Vec::new(),
                },
                stats,
            });
        }

        let order_start = Instant::now();
        let plan = compute_order_with(q, &cpi, &decomposition, config.order);
        stats.ordering_time = order_start.elapsed();

        Ok(Prepared {
            decomposition,
            cpi,
            plan,
            stats,
        })
    }

    /// Enumerates embeddings of `q`, streaming each mapping to `sink`.
    pub fn find_embeddings(
        &self,
        q: &Graph,
        config: &MatchConfig,
        mut sink: impl FnMut(&[VertexId]) -> bool,
    ) -> Result<MatchReport, Error> {
        let prepared = self.prepare(q, config)?;
        Ok(crate::exec::enumerate_prepared(
            q,
            self.graph,
            prepared,
            config.budget,
            Some(&mut sink),
        ))
    }

    /// Counts embeddings of `q` without materializing them.
    pub fn count_embeddings(&self, q: &Graph, config: &MatchConfig) -> Result<MatchReport, Error> {
        let prepared = self.prepare(q, config)?;
        Ok(crate::exec::enumerate_prepared(
            q,
            self.graph,
            prepared,
            config.budget,
            None,
        ))
    }

    /// Collects up to the budget's embeddings.
    pub fn collect_embeddings(
        &self,
        q: &Graph,
        config: &MatchConfig,
    ) -> Result<(Vec<Embedding>, MatchReport), Error> {
        let mut out = Vec::new();
        let report = self.find_embeddings(q, config, |m| {
            out.push(Embedding {
                mapping: m.to_vec(),
            });
            true
        })?;
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatchConfig;
    use cfl_graph::graph_from_edges;

    #[test]
    fn session_matches_one_shot_api() {
        let g = graph_from_edges(
            &[0, 1, 2, 0, 1, 2],
            &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 4)],
        )
        .unwrap();
        let session = DataGraph::new(&g);
        let queries = [
            graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]).unwrap(),
            graph_from_edges(&[0, 1], &[(0, 1)]).unwrap(),
            graph_from_edges(&[1, 2], &[(0, 1)]).unwrap(),
        ];
        for q in &queries {
            let (via_session, _) = session
                .collect_embeddings(q, &MatchConfig::exhaustive())
                .unwrap();
            let (one_shot, _) =
                crate::exec::collect_embeddings(q, &g, &MatchConfig::exhaustive()).unwrap();
            let mut a: Vec<_> = via_session.into_iter().map(|e| e.mapping).collect();
            let mut b: Vec<_> = one_shot.into_iter().map(|e| e.mapping).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn session_count_matches_enumeration() {
        let g = graph_from_edges(&[0, 1, 1, 1, 0], &[(0, 1), (0, 2), (0, 3), (4, 1)]).unwrap();
        let session = DataGraph::new(&g);
        let q = graph_from_edges(&[0, 1, 1], &[(0, 1), (0, 2)]).unwrap();
        let count = session
            .count_embeddings(&q, &MatchConfig::exhaustive())
            .unwrap()
            .embeddings;
        let (embs, _) = session
            .collect_embeddings(&q, &MatchConfig::exhaustive())
            .unwrap();
        assert_eq!(count, embs.len() as u64);
    }

    #[test]
    fn session_validates_queries() {
        let g = graph_from_edges(&[0, 0], &[(0, 1)]).unwrap();
        let session = DataGraph::new(&g);
        let empty = graph_from_edges(&[], &[]).unwrap();
        assert!(matches!(
            session.count_embeddings(&empty, &MatchConfig::default()),
            Err(Error::EmptyQuery)
        ));
    }
}
