//! Multi-query sessions: index a data graph once, run many queries.
//!
//! The engine's one-shot entry points ([`find_embeddings`](crate::find_embeddings),
//! [`count_embeddings`](crate::count_embeddings)) rebuild the data-graph
//! side statistics (label index, NLF signatures, maximum neighbor degrees)
//! on every call — `O(|V(G)| + |E(G)|)` work that is query-independent. A
//! [`DataGraph`] hoists that cost so query workloads pay only per-query
//! costs (CPI construction, ordering, enumeration), matching how the
//! paper's evaluation treats dataset preprocessing.

use std::time::Instant;

use cfl_graph::{Graph, VertexId};

use crate::cache::{cacheable_plan, CachedPlan, PlanCache};
use crate::config::MatchConfig;
use crate::error::Error;
use crate::exec::{Prepared, SinkRef};
use crate::filters::GraphStats;
use crate::result::{Embedding, MatchReport};
use crate::sync::Arc;

/// A data graph with its matching statistics prebuilt.
pub struct DataGraph<'g> {
    graph: &'g Graph,
    stats: GraphStats,
    cache: Option<Arc<PlanCache>>,
}

/// How one query's preparation was obtained under a session.
enum Planned {
    /// Cold preparation in the caller's vertex numbering (boxed: a
    /// `Prepared` is an order of magnitude larger than the hit variant).
    Cold(Box<Prepared>),
    /// Plan-cache hit: a frozen preparation in the *cached* query's
    /// numbering plus the embedding remap into the caller's, and the time
    /// the lookup took (reported as the run's build time).
    Hit {
        plan: Arc<CachedPlan>,
        remap: Vec<u32>,
        lookup_time: std::time::Duration,
    },
}

impl<'g> DataGraph<'g> {
    /// Indexes `g` (label index, NLF signatures, MND) in
    /// `O(|V(G)| + |E(G)|)`.
    pub fn new(g: &'g Graph) -> Self {
        DataGraph {
            graph: g,
            stats: GraphStats::build(g),
            cache: None,
        }
    }

    /// [`new`](Self::new) plus a fresh default-capacity [`PlanCache`]:
    /// repeat queries that are label-preserving isomorphic to an earlier
    /// one skip CPI construction entirely.
    pub fn with_cache(g: &'g Graph) -> Self {
        Self::new(g).with_plan_cache(Arc::new(PlanCache::with_default_capacity()))
    }

    /// Attaches a (possibly shared) plan cache. Sharing is sound only
    /// across sessions over versions of the *same* data-graph lineage —
    /// entries are keyed by graph epoch, not graph identity.
    #[must_use]
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached plan cache, if any (e.g. to read its counters).
    pub fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.cache.as_ref()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The prebuilt statistics (shared with the filter machinery).
    pub fn stats(&self) -> &GraphStats {
        &self.stats
    }

    /// Runs the preparation phase (validation, root selection,
    /// decomposition, CPI, ordering) for one query against this session.
    ///
    /// Delegates to the same pipeline as the one-shot API — only the
    /// data-side statistics differ (this session's prebuilt tables are
    /// passed instead of being fetched per call), so instrumentation and
    /// validation behave identically on both paths.
    pub fn prepare(&self, q: &Graph, config: &MatchConfig) -> Result<Prepared, Error> {
        crate::exec::prepare_with(q, self.graph, &self.stats, config)
    }

    /// Preparation through the plan cache: consult it (counting the
    /// lookup), fall back to a cold [`prepare`](Self::prepare) on a miss
    /// and store the result for the next isomorphic query.
    fn plan(&self, q: &Graph, config: &MatchConfig) -> Result<Planned, Error> {
        let Some(cache) = &self.cache else {
            return Ok(Planned::Cold(Box::new(self.prepare(q, config)?)));
        };
        let start = Instant::now();
        let epoch = self.graph.epoch();
        let (canon, hit) = cache.lookup(q, epoch, config);
        if let (Some(canon), Some(plan)) = (&canon, hit) {
            let remap = plan.remap_for(canon);
            return Ok(Planned::Hit {
                plan,
                remap,
                lookup_time: start.elapsed(),
            });
        }
        let prepared = self.prepare(q, config)?;
        if let Some(canon) = canon {
            let plan = Arc::new(cacheable_plan(q, &prepared, &canon));
            cache.insert(epoch, config, canon, plan);
        }
        Ok(Planned::Cold(Box::new(prepared)))
    }

    /// Runs a query end to end through the cache-aware path. On a hit the
    /// enumeration walks the cached CPI in the cached query's numbering
    /// and each embedding is remapped into the caller's before it reaches
    /// the sink, so results are indistinguishable from a cold run. When
    /// the `trace` feature is on and a plan cache is attached, the cache's
    /// counter snapshot is copied into the report's trace so
    /// `--stats`/`--stats-json` surface it.
    fn run(
        &self,
        q: &Graph,
        config: &MatchConfig,
        sink: SinkRef<'_>,
    ) -> Result<MatchReport, Error> {
        #[allow(unused_mut)]
        let mut report = self.run_inner(q, config, sink)?;
        #[cfg(feature = "trace")]
        if let (Some(cache), Some(trace)) = (&self.cache, report.stats.trace.as_deref_mut()) {
            let snap = cache.snapshot();
            trace.cache.plan_lookups = snap.lookups;
            trace.cache.plan_hits = snap.hits;
            trace.cache.plan_misses = snap.misses;
            trace.cache.plan_evictions = snap.evictions;
            trace.cache.plan_refreshes = snap.refreshes;
        }
        Ok(report)
    }

    fn run_inner(
        &self,
        q: &Graph,
        config: &MatchConfig,
        sink: SinkRef<'_>,
    ) -> Result<MatchReport, Error> {
        match self.plan(q, config)? {
            Planned::Cold(prepared) => Ok(crate::exec::enumerate_prepared(
                q, self.graph, &prepared, config, sink,
            )),
            Planned::Hit {
                plan,
                remap,
                lookup_time,
            } => {
                let mut prepared = Prepared {
                    decomposition: plan.decomposition.clone(),
                    cpi: Arc::clone(&plan.cpi),
                    plan: plan.plan.clone(),
                    stats: plan.stats.clone(),
                };
                // The run's "build" cost is the lookup, not the original
                // construction the cached stats remember.
                prepared.stats.build_time = lookup_time;
                Ok(match sink {
                    None => crate::exec::enumerate_prepared(
                        &plan.q, self.graph, &prepared, config, None,
                    ),
                    Some(s) => {
                        let mut buf = vec![0 as VertexId; remap.len()];
                        let mut remapped = |emb: &[VertexId]| {
                            for (slot, &c) in buf.iter_mut().zip(remap.iter()) {
                                *slot = emb[c as usize];
                            }
                            s(&buf)
                        };
                        crate::exec::enumerate_prepared(
                            &plan.q,
                            self.graph,
                            &prepared,
                            config,
                            Some(&mut remapped),
                        )
                    }
                })
            }
        }
    }

    /// Enumerates embeddings of `q`, streaming each mapping to `sink`.
    pub fn find_embeddings(
        &self,
        q: &Graph,
        config: &MatchConfig,
        mut sink: impl FnMut(&[VertexId]) -> bool,
    ) -> Result<MatchReport, Error> {
        self.run(q, config, Some(&mut sink))
    }

    /// Counts embeddings of `q` without materializing them.
    pub fn count_embeddings(&self, q: &Graph, config: &MatchConfig) -> Result<MatchReport, Error> {
        self.run(q, config, None)
    }

    /// Collects up to the budget's embeddings.
    pub fn collect_embeddings(
        &self,
        q: &Graph,
        config: &MatchConfig,
    ) -> Result<(Vec<Embedding>, MatchReport), Error> {
        let mut out = Vec::new();
        let report = self.find_embeddings(q, config, |m| {
            out.push(Embedding {
                mapping: m.to_vec(),
            });
            true
        })?;
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatchConfig;
    use cfl_graph::graph_from_edges;

    #[test]
    fn session_matches_one_shot_api() {
        let g = graph_from_edges(
            &[0, 1, 2, 0, 1, 2],
            &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 4)],
        )
        .unwrap();
        let session = DataGraph::new(&g);
        let queries = [
            graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]).unwrap(),
            graph_from_edges(&[0, 1], &[(0, 1)]).unwrap(),
            graph_from_edges(&[1, 2], &[(0, 1)]).unwrap(),
        ];
        for q in &queries {
            let (via_session, _) = session
                .collect_embeddings(q, &MatchConfig::exhaustive())
                .unwrap();
            let (one_shot, _) =
                crate::exec::collect_embeddings(q, &g, &MatchConfig::exhaustive()).unwrap();
            let mut a: Vec<_> = via_session.into_iter().map(|e| e.mapping).collect();
            let mut b: Vec<_> = one_shot.into_iter().map(|e| e.mapping).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn session_count_matches_enumeration() {
        let g = graph_from_edges(&[0, 1, 1, 1, 0], &[(0, 1), (0, 2), (0, 3), (4, 1)]).unwrap();
        let session = DataGraph::new(&g);
        let q = graph_from_edges(&[0, 1, 1], &[(0, 1), (0, 2)]).unwrap();
        let count = session
            .count_embeddings(&q, &MatchConfig::exhaustive())
            .unwrap()
            .embeddings;
        let (embs, _) = session
            .collect_embeddings(&q, &MatchConfig::exhaustive())
            .unwrap();
        assert_eq!(count, embs.len() as u64);
    }

    #[test]
    fn cached_session_matches_uncached_across_isomorphic_repeats() {
        let g = graph_from_edges(
            &[0, 1, 2, 0, 1, 2],
            &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 4)],
        )
        .unwrap();
        let cold = DataGraph::new(&g);
        let cached = DataGraph::with_cache(&g);
        // The second and third queries are vertex permutations of the
        // first: the cache serves them from the stored plan and must
        // remap embeddings back into each caller's numbering.
        let queries = [
            graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]).unwrap(),
            graph_from_edges(&[2, 0, 1], &[(0, 1), (1, 2), (2, 0)]).unwrap(),
            graph_from_edges(&[1, 2, 0], &[(0, 1), (1, 2), (2, 0)]).unwrap(),
            graph_from_edges(&[0, 1], &[(0, 1)]).unwrap(),
            graph_from_edges(&[1, 0], &[(0, 1)]).unwrap(),
        ];
        for q in &queries {
            let (mut a, ra) = cached
                .collect_embeddings(q, &MatchConfig::exhaustive())
                .unwrap();
            let (mut b, rb) = cold
                .collect_embeddings(q, &MatchConfig::exhaustive())
                .unwrap();
            a.sort_by(|x, y| x.mapping.cmp(&y.mapping));
            b.sort_by(|x, y| x.mapping.cmp(&y.mapping));
            assert_eq!(
                a.iter().map(|e| &e.mapping).collect::<Vec<_>>(),
                b.iter().map(|e| &e.mapping).collect::<Vec<_>>()
            );
            assert_eq!(ra.embeddings, rb.embeddings);
            assert_eq!(ra.outcome, rb.outcome);
        }
        let snap = cached.plan_cache().unwrap().snapshot();
        assert_eq!(snap.lookups, 5);
        assert_eq!(snap.hits, 3, "isomorphic repeats must hit");
        assert_eq!(snap.misses, 2);
        assert_eq!(snap.lookups, snap.hits + snap.misses);
    }

    #[test]
    fn cached_session_respects_budget_and_count() {
        let g = graph_from_edges(
            &[0, 1, 1, 1, 0],
            &[(0, 1), (0, 2), (0, 3), (4, 1), (4, 2), (4, 3)],
        )
        .unwrap();
        let session = DataGraph::with_cache(&g);
        let q = graph_from_edges(&[0, 1, 1], &[(0, 1), (0, 2)]).unwrap();
        let full = session
            .count_embeddings(&q, &MatchConfig::exhaustive())
            .unwrap()
            .embeddings;
        // Second run hits the cache; the enumeration budget still applies.
        let budget = MatchConfig::exhaustive().with_budget(crate::config::Budget::first(2));
        let (embs, report) = session.collect_embeddings(&q, &budget).unwrap();
        assert_eq!(embs.len(), 2);
        assert_eq!(report.outcome, crate::result::MatchOutcome::LimitReached);
        assert!(full > 2);
        assert_eq!(session.plan_cache().unwrap().snapshot().hits, 1);
    }

    #[test]
    fn session_validates_queries() {
        let g = graph_from_edges(&[0, 0], &[(0, 1)]).unwrap();
        let session = DataGraph::new(&g);
        let empty = graph_from_edges(&[], &[]).unwrap();
        assert!(matches!(
            session.count_embeddings(&empty, &MatchConfig::default()),
            Err(Error::EmptyQuery)
        ));
    }
}
