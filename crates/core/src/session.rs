//! Multi-query sessions: index a data graph once, run many queries.
//!
//! The engine's one-shot entry points ([`find_embeddings`](crate::find_embeddings),
//! [`count_embeddings`](crate::count_embeddings)) rebuild the data-graph
//! side statistics (label index, NLF signatures, maximum neighbor degrees)
//! on every call — `O(|V(G)| + |E(G)|)` work that is query-independent. A
//! [`DataGraph`] hoists that cost so query workloads pay only per-query
//! costs (CPI construction, ordering, enumeration), matching how the
//! paper's evaluation treats dataset preprocessing.

use cfl_graph::{Graph, VertexId};

use crate::config::MatchConfig;
use crate::error::Error;
use crate::exec::Prepared;
use crate::filters::GraphStats;
use crate::result::{Embedding, MatchReport};

/// A data graph with its matching statistics prebuilt.
pub struct DataGraph<'g> {
    graph: &'g Graph,
    stats: GraphStats,
}

impl<'g> DataGraph<'g> {
    /// Indexes `g` (label index, NLF signatures, MND) in
    /// `O(|V(G)| + |E(G)|)`.
    pub fn new(g: &'g Graph) -> Self {
        DataGraph {
            graph: g,
            stats: GraphStats::build(g),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The prebuilt statistics (shared with the filter machinery).
    pub fn stats(&self) -> &GraphStats {
        &self.stats
    }

    /// Runs the preparation phase (validation, root selection,
    /// decomposition, CPI, ordering) for one query against this session.
    ///
    /// Delegates to the same pipeline as the one-shot API — only the
    /// data-side statistics differ (this session's prebuilt tables are
    /// passed instead of being fetched per call), so instrumentation and
    /// validation behave identically on both paths.
    pub fn prepare(&self, q: &Graph, config: &MatchConfig) -> Result<Prepared, Error> {
        crate::exec::prepare_with(q, self.graph, &self.stats, config)
    }

    /// Enumerates embeddings of `q`, streaming each mapping to `sink`.
    pub fn find_embeddings(
        &self,
        q: &Graph,
        config: &MatchConfig,
        mut sink: impl FnMut(&[VertexId]) -> bool,
    ) -> Result<MatchReport, Error> {
        let prepared = self.prepare(q, config)?;
        Ok(crate::exec::enumerate_prepared(
            q,
            self.graph,
            prepared,
            config.budget,
            Some(&mut sink),
        ))
    }

    /// Counts embeddings of `q` without materializing them.
    pub fn count_embeddings(&self, q: &Graph, config: &MatchConfig) -> Result<MatchReport, Error> {
        let prepared = self.prepare(q, config)?;
        Ok(crate::exec::enumerate_prepared(
            q,
            self.graph,
            prepared,
            config.budget,
            None,
        ))
    }

    /// Collects up to the budget's embeddings.
    pub fn collect_embeddings(
        &self,
        q: &Graph,
        config: &MatchConfig,
    ) -> Result<(Vec<Embedding>, MatchReport), Error> {
        let mut out = Vec::new();
        let report = self.find_embeddings(q, config, |m| {
            out.push(Embedding {
                mapping: m.to_vec(),
            });
            true
        })?;
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatchConfig;
    use cfl_graph::graph_from_edges;

    #[test]
    fn session_matches_one_shot_api() {
        let g = graph_from_edges(
            &[0, 1, 2, 0, 1, 2],
            &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 4)],
        )
        .unwrap();
        let session = DataGraph::new(&g);
        let queries = [
            graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]).unwrap(),
            graph_from_edges(&[0, 1], &[(0, 1)]).unwrap(),
            graph_from_edges(&[1, 2], &[(0, 1)]).unwrap(),
        ];
        for q in &queries {
            let (via_session, _) = session
                .collect_embeddings(q, &MatchConfig::exhaustive())
                .unwrap();
            let (one_shot, _) =
                crate::exec::collect_embeddings(q, &g, &MatchConfig::exhaustive()).unwrap();
            let mut a: Vec<_> = via_session.into_iter().map(|e| e.mapping).collect();
            let mut b: Vec<_> = one_shot.into_iter().map(|e| e.mapping).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn session_count_matches_enumeration() {
        let g = graph_from_edges(&[0, 1, 1, 1, 0], &[(0, 1), (0, 2), (0, 3), (4, 1)]).unwrap();
        let session = DataGraph::new(&g);
        let q = graph_from_edges(&[0, 1, 1], &[(0, 1), (0, 2)]).unwrap();
        let count = session
            .count_embeddings(&q, &MatchConfig::exhaustive())
            .unwrap()
            .embeddings;
        let (embs, _) = session
            .collect_embeddings(&q, &MatchConfig::exhaustive())
            .unwrap();
        assert_eq!(count, embs.len() as u64);
    }

    #[test]
    fn session_validates_queries() {
        let g = graph_from_edges(&[0, 0], &[(0, 1)]).unwrap();
        let session = DataGraph::new(&g);
        let empty = graph_from_edges(&[], &[]).unwrap();
        assert!(matches!(
            session.count_embeddings(&empty, &MatchConfig::default()),
            Err(Error::EmptyQuery)
        ));
    }
}
