//! Core-forest-leaf (CFL) decomposition of a query graph (Section 3).
//!
//! * The **core-structure** is the minimal connected subgraph containing all
//!   non-tree edges of every spanning tree — exactly the 2-core of `q`
//!   (Lemma 3.1), computed by iteratively peeling degree-one vertices. When
//!   `q` is a tree (empty 2-core) the core degenerates to the chosen root
//!   vertex.
//! * The **forest-structure** is what remains: a set of trees, each sharing
//!   exactly one *connection vertex* with the core.
//! * The **leaf-set** `V_I` contains the degree-one vertices of those trees
//!   (rooted at their connection vertices); §A.5 shows this is the maximal
//!   independent set obtainable from the forest.
//!
//! The macro matching order is then `(V_C, V_T, V_I)`.

use cfl_graph::{two_core, Graph, VertexId};

use crate::config::DecompositionMode;

/// Which part of the decomposition a query vertex belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Member of the core-set `V_C`.
    Core,
    /// Member of the forest-set `V_T`.
    Forest,
    /// Member of the leaf-set `V_I`.
    Leaf,
}

/// One connected tree of the forest-structure.
#[derive(Clone, Debug)]
pub struct ForestTree {
    /// The core vertex the tree hangs off ("connection vertex"). Belongs to
    /// `V_C`, not to the tree's member list.
    pub connection: VertexId,
    /// Tree vertices excluding the connection vertex, in BFS order from the
    /// connection.
    pub members: Vec<VertexId>,
}

/// The core-forest-leaf decomposition of a query.
#[derive(Clone, Debug)]
pub struct CflDecomposition {
    /// Role of each query vertex.
    pub roles: Vec<Role>,
    /// The core-set `V_C`.
    pub core: Vec<VertexId>,
    /// The forest-set `V_T`.
    pub forest: Vec<VertexId>,
    /// The leaf-set `V_I`.
    pub leaves: Vec<VertexId>,
    /// Connected trees of the forest-structure (members include both forest
    /// and leaf vertices).
    pub trees: Vec<ForestTree>,
}

impl CflDecomposition {
    /// Decomposes `q` under the given mode.
    ///
    /// `root` is the vertex selected by root selection (§A.6); it seeds the
    /// degenerate core when `q` is a tree. When the 2-core is non-empty,
    /// `root` must belong to it (callers select the root from the core).
    ///
    /// Mode semantics:
    /// * [`DecompositionMode::None`] — every vertex is `Core` (the `Match`
    ///   variant applies core-match to the whole query);
    /// * [`DecompositionMode::CoreForest`] — leaves stay in the forest-set
    ///   (`CF-Match`);
    /// * [`DecompositionMode::CoreForestLeaf`] — the full decomposition.
    pub fn compute(q: &Graph, root: VertexId, mode: DecompositionMode) -> Self {
        let n = q.num_vertices();
        assert!(n > 0, "query must be non-empty");

        if mode == DecompositionMode::None {
            return CflDecomposition {
                roles: vec![Role::Core; n],
                core: (0..n as VertexId).collect(),
                forest: Vec::new(),
                leaves: Vec::new(),
                trees: Vec::new(),
            };
        }

        let mut in_core = two_core(q);
        if in_core.iter().all(|&b| !b) {
            // q is a tree: the core degenerates to the root vertex.
            in_core[root as usize] = true;
        }
        debug_assert!(
            in_core[root as usize],
            "root must be selected from the core"
        );

        let mut roles: Vec<Role> = in_core
            .iter()
            .map(|&c| if c { Role::Core } else { Role::Forest })
            .collect();

        // Discover forest trees. Each connected component of q ∖ V_C is
        // attached to exactly one core vertex by exactly one edge (otherwise
        // a cycle through the component would have pulled it into the
        // 2-core); all components sharing a connection vertex form one tree
        // of the forest-structure, rooted at that connection vertex
        // (Figure 4(c)).
        let mut trees: Vec<ForestTree> = Vec::new();
        let mut seen = vec![false; n];
        for c in 0..n as VertexId {
            if !in_core[c as usize] {
                continue;
            }
            let mut members: Vec<VertexId> = Vec::new();
            // BFS simultaneously into every non-core branch of c, so the
            // member list is in BFS order from the connection vertex.
            for &w in q.neighbors(c) {
                if !in_core[w as usize] && !seen[w as usize] {
                    seen[w as usize] = true;
                    members.push(w);
                }
            }
            let mut head = 0;
            while head < members.len() {
                let v = members[head];
                head += 1;
                for &x in q.neighbors(v) {
                    if !in_core[x as usize] && !seen[x as usize] {
                        seen[x as usize] = true;
                        members.push(x);
                    }
                }
            }
            if !members.is_empty() {
                trees.push(ForestTree {
                    connection: c,
                    members,
                });
            }
        }

        // Leaf classification: degree-one vertices of q inside trees.
        if mode == DecompositionMode::CoreForestLeaf {
            for t in &trees {
                for &v in &t.members {
                    if q.degree(v) == 1 {
                        roles[v as usize] = Role::Leaf;
                    }
                }
            }
        }

        let mut core = Vec::new();
        let mut forest = Vec::new();
        let mut leaves = Vec::new();
        for v in 0..n as VertexId {
            match roles[v as usize] {
                Role::Core => core.push(v),
                Role::Forest => forest.push(v),
                Role::Leaf => leaves.push(v),
            }
        }

        CflDecomposition {
            roles,
            core,
            forest,
            leaves,
            trees,
        }
    }

    /// Whether `v` is a core vertex.
    #[inline]
    pub fn is_core(&self, v: VertexId) -> bool {
        self.roles[v as usize] == Role::Core
    }

    /// Whether `v` is a leaf vertex.
    #[inline]
    pub fn is_leaf(&self, v: VertexId) -> bool {
        self.roles[v as usize] == Role::Leaf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfl_graph::graph_from_edges;

    /// Figure 4(a): triangle core {0,1,2}; trees under 1 and 2; leaves 7–10.
    fn figure4_query() -> Graph {
        graph_from_edges(
            &[0; 11],
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (1, 4),
                (2, 5),
                (2, 6),
                (3, 7),
                (4, 8),
                (5, 9),
                (6, 10),
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure4_decomposition() {
        let q = figure4_query();
        let d = CflDecomposition::compute(&q, 0, DecompositionMode::CoreForestLeaf);
        assert_eq!(d.core, vec![0, 1, 2]);
        assert_eq!(d.forest, vec![3, 4, 5, 6]);
        assert_eq!(d.leaves, vec![7, 8, 9, 10]);
        assert_eq!(d.trees.len(), 2);
        let t1 = d.trees.iter().find(|t| t.connection == 1).unwrap();
        let mut m = t1.members.clone();
        m.sort_unstable();
        assert_eq!(m, vec![3, 4, 7, 8]);
    }

    #[test]
    fn cf_mode_keeps_leaves_in_forest() {
        let q = figure4_query();
        let d = CflDecomposition::compute(&q, 0, DecompositionMode::CoreForest);
        assert!(d.leaves.is_empty());
        assert_eq!(d.forest, vec![3, 4, 5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn none_mode_puts_everything_in_core() {
        let q = figure4_query();
        let d = CflDecomposition::compute(&q, 0, DecompositionMode::None);
        assert_eq!(d.core.len(), 11);
        assert!(d.forest.is_empty() && d.leaves.is_empty() && d.trees.is_empty());
    }

    #[test]
    fn tree_query_core_is_root() {
        // Path 0-1-2-3.
        let q = graph_from_edges(&[0; 4], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let d = CflDecomposition::compute(&q, 1, DecompositionMode::CoreForestLeaf);
        assert_eq!(d.core, vec![1]);
        assert_eq!(d.leaves, vec![0, 3]); // degree-one endpoints
        assert_eq!(d.forest, vec![2]);
        assert_eq!(d.trees.len(), 1, "both branches share connection vertex 1");
    }

    #[test]
    fn single_vertex_query() {
        let q = graph_from_edges(&[0], &[]).unwrap();
        let d = CflDecomposition::compute(&q, 0, DecompositionMode::CoreForestLeaf);
        assert_eq!(d.core, vec![0]);
        assert!(d.forest.is_empty() && d.leaves.is_empty());
    }

    #[test]
    fn single_edge_query() {
        let q = graph_from_edges(&[0, 1], &[(0, 1)]).unwrap();
        let d = CflDecomposition::compute(&q, 0, DecompositionMode::CoreForestLeaf);
        assert_eq!(d.core, vec![0]);
        assert_eq!(d.leaves, vec![1]);
        assert!(d.forest.is_empty());
    }

    #[test]
    fn whole_query_can_be_core() {
        // A 4-cycle: every vertex is in the 2-core.
        let q = graph_from_edges(&[0; 4], &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let d = CflDecomposition::compute(&q, 0, DecompositionMode::CoreForestLeaf);
        assert_eq!(d.core.len(), 4);
        assert!(d.trees.is_empty());
    }

    #[test]
    fn star_query_all_leaves() {
        // Star center 0 with 4 spokes: tree query, core = {0}, leaves = spokes.
        let q = graph_from_edges(&[0; 5], &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let d = CflDecomposition::compute(&q, 0, DecompositionMode::CoreForestLeaf);
        assert_eq!(d.core, vec![0]);
        assert!(d.forest.is_empty());
        assert_eq!(d.leaves, vec![1, 2, 3, 4]);
        assert_eq!(d.trees.len(), 1, "one tree rooted at the star center");
    }

    #[test]
    fn roles_partition_all_vertices() {
        let q = figure4_query();
        let d = CflDecomposition::compute(&q, 0, DecompositionMode::CoreForestLeaf);
        assert_eq!(
            d.core.len() + d.forest.len() + d.leaves.len(),
            q.num_vertices()
        );
        assert!(d.is_core(0) && !d.is_core(3));
        assert!(d.is_leaf(7) && !d.is_leaf(3));
    }

    #[test]
    fn challenge1_query_decomposition() {
        // Figure 1(a): u1..u6 = 0..5; edges: (0,1),(1,2),(2,3),(0,4),(4,5),(1,4).
        // Core = {0,1,4} (cycle); forest = {2}; leaves = {3,5}.
        let q = graph_from_edges(
            &[0, 1, 2, 3, 4, 5],
            &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (1, 4)],
        )
        .unwrap();
        let d = CflDecomposition::compute(&q, 0, DecompositionMode::CoreForestLeaf);
        assert_eq!(d.core, vec![0, 1, 4]);
        assert_eq!(d.forest, vec![2]);
        assert_eq!(d.leaves, vec![3, 5]);
    }
}

/// §A.5: the forest-IS generalization. Computes the connected minimum
/// vertex cover (cMVC) of each forest tree — the smallest vertex set that
/// covers every tree edge, contains the connection vertex, and stays
/// connected — whose complement is the largest independent set usable in
/// place of the leaf-set.
///
/// The appendix proves the cMVC of a tree rooted at its connection vertex
/// is exactly {connection} ∪ {vertices of degree ≥ 2}, so the complementary
/// independent set *is* the leaf-set `V_I`; this function exists to verify
/// that maximality claim programmatically (see the property tests).
pub fn forest_independent_set(q: &Graph, decomp: &CflDecomposition) -> Vec<VertexId> {
    let mut is = Vec::new();
    for t in &decomp.trees {
        for &m in &t.members {
            // Degree-one vertices of q inside the tree form the IS.
            if q.degree(m) == 1 {
                is.push(m);
            }
        }
    }
    is.sort_unstable();
    is
}

/// Checks that `set` is an independent set of `q` (no two members
/// adjacent).
pub fn is_independent_set(q: &Graph, set: &[VertexId]) -> bool {
    for (i, &u) in set.iter().enumerate() {
        for &v in &set[i + 1..] {
            if q.has_edge(u, v) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod is_tests {
    use super::*;
    use cfl_graph::graph_from_edges;

    #[test]
    fn forest_is_equals_leaf_set() {
        // Figure 4 query: the leaf-set and the forest independent set must
        // coincide (§A.5's maximality claim).
        let q = graph_from_edges(
            &[0; 11],
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (1, 4),
                (2, 5),
                (2, 6),
                (3, 7),
                (4, 8),
                (5, 9),
                (6, 10),
            ],
        )
        .unwrap();
        let d = CflDecomposition::compute(&q, 0, DecompositionMode::CoreForestLeaf);
        let is = forest_independent_set(&q, &d);
        assert_eq!(is, d.leaves);
        assert!(is_independent_set(&q, &is));
    }

    #[test]
    fn independent_set_checker() {
        let q = graph_from_edges(&[0; 4], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(is_independent_set(&q, &[0, 2]));
        assert!(is_independent_set(&q, &[0, 3]));
        assert!(!is_independent_set(&q, &[0, 1]));
        assert!(is_independent_set(&q, &[]));
    }
}
